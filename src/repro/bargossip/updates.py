"""Update identities, per-node stores, and lifetime accounting.

Updates are identified by a dense integer id: the update with index
``k`` released in round ``r`` (with ``u`` updates per round) has id
``r * u + k``.  This makes creation round and age pure arithmetic and
lets the hot paths work on plain ``set[int]`` — or, in the vectorized
backend, on column offsets into a dense boolean matrix.

Three views of update state are kept:

* :class:`UpdateStore` — one per node: the live updates the node holds
  and the live updates it is still missing.  Both sets contain live
  (unexpired) updates only, so their sizes stay bounded by
  ``updates_per_round * update_lifetime`` regardless of run length.
* :class:`BitsetPopulationStore` / :class:`BitsetUpdateStore` — the
  vectorized equivalent (``GossipConfig.backend == "bitset"``): one
  dense boolean matrix of shape ``(n_nodes, live_window)`` per side
  (have/missing), owned by the simulator, with one lightweight
  per-node view implementing the :class:`UpdateStore` interface.
  Because an update lives exactly ``update_lifetime`` rounds, the live
  id window is a sliding interval of at most
  ``updates_per_round * update_lifetime`` ids; column ``c`` always
  holds update ``base + c``, so id order equals column order and the
  round phases become batch array operations.
* :class:`UpdateLedger` — global: which updates are currently live and
  when each expires, used to drive per-round expiry and the delivery
  metric ("fraction of updates received ... " in Figures 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

import numpy as np

from ..core.errors import SimulationError

__all__ = [
    "update_id",
    "creation_round",
    "UpdateStore",
    "BitsetPopulationStore",
    "BitsetUpdateStore",
    "UpdateLedger",
    "popcount",
    "top_bits",
    "bottom_bits",
    "iter_bits",
]


def update_id(round_created: int, index: int, updates_per_round: int) -> int:
    """The dense integer id of update ``index`` of round ``round_created``."""
    if not 0 <= index < updates_per_round:
        raise SimulationError(
            f"index {index} out of range for {updates_per_round} updates per round"
        )
    return round_created * updates_per_round + index


def creation_round(update: int, updates_per_round: int) -> int:
    """Round in which ``update`` was released."""
    return update // updates_per_round


class UpdateStore:
    """The live-update state of a single node.

    Invariants (enforced in tests):

    * ``have`` and ``missing`` are disjoint;
    * ``have | missing`` equals the set of currently live updates, for
      every node, at every round boundary.
    """

    __slots__ = ("have", "missing")

    def __init__(self) -> None:
        self.have: Set[int] = set()
        self.missing: Set[int] = set()

    def announce(self, update: int, holds: bool) -> None:
        """Register a newly released live update.

        ``holds`` is True when the broadcaster seeded the update to
        this node.
        """
        if holds:
            self.have.add(update)
        else:
            self.missing.add(update)

    def receive(self, update: int) -> bool:
        """Record receipt of ``update``; returns True if it was new.

        Receiving an update the node already holds is a no-op (it can
        happen when the ideal attacker broadcasts out of band).
        """
        if update in self.have:
            return False
        self.missing.discard(update)
        self.have.add(update)
        return True

    def receive_all(self, updates: Iterable[int]) -> int:
        """Receive many updates; returns how many were new."""
        new = 0
        for update in updates:
            if self.receive(update):
                new += 1
        return new

    def expire(self, update: int) -> bool:
        """Drop ``update`` at end of life; returns True iff it was held.

        The return value is exactly the "delivered" bit of the paper's
        metric: the node either got the update while it was live or
        missed it forever.
        """
        if update in self.have:
            self.have.discard(update)
            return True
        self.missing.discard(update)
        return False

    @property
    def is_satiated(self) -> bool:
        """True when the node is missing no live update.

        This is the satiation state of Section 3 instantiated for
        gossip: a node with nothing to collect has nothing to gain from
        any exchange.
        """
        return not self.missing

    def missing_older_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Missing updates created strictly before ``cutoff_round``.

        Used by rational nodes to decide whether any missing update is
        "expiring relatively soon" and hence worth an optimistic push.
        Sorted oldest first (most urgent first).
        """
        old = [
            update
            for update in self.missing
            if creation_round(update, updates_per_round) < cutoff_round
        ]
        old.sort()
        return old

    def have_newer_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Held updates created at or after ``cutoff_round`` (recent ones).

        These are the "recently released updates it has to offer" in an
        optimistic push.  Sorted newest first.
        """
        recent = [
            update
            for update in self.have
            if creation_round(update, updates_per_round) >= cutoff_round
        ]
        recent.sort(reverse=True)
        return recent

    def has_missing_older_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any missing update was created strictly before ``cutoff_round``."""
        return any(
            creation_round(update, updates_per_round) < cutoff_round
            for update in self.missing
        )

    def has_have_newer_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any held update was created at or after ``cutoff_round``."""
        return any(
            creation_round(update, updates_per_round) >= cutoff_round
            for update in self.have
        )


def popcount(bits: int) -> int:
    """Number of set bits (``int.bit_count`` with a 3.9 fallback)."""
    return bin(bits).count("1")


if hasattr(int, "bit_count"):  # Python >= 3.10: one C call instead of bin()
    popcount = int.bit_count  # noqa: F811 - deliberate fast-path override


def top_bits(bits: int, count: int) -> int:
    """Mask of the ``count`` highest set bits of ``bits``."""
    out = 0
    for _ in range(count):
        if not bits:
            break
        highest = 1 << (bits.bit_length() - 1)
        out |= highest
        bits ^= highest
    return out


def bottom_bits(bits: int, count: int) -> int:
    """Mask of the ``count`` lowest set bits of ``bits``."""
    out = 0
    for _ in range(count):
        if not bits:
            break
        lowest = bits & -bits
        out |= lowest
        bits ^= lowest
    return out


def iter_bits(bits: int) -> Iterable[int]:
    """Yield the set bit positions of ``bits``, lowest first."""
    while bits:
        lowest = bits & -bits
        yield lowest.bit_length() - 1
        bits ^= lowest


class BitsetPopulationStore:
    """Dense live-update state for the whole population.

    Conceptually a pair of boolean matrices of shape
    ``(n_nodes, live_window)`` — one row of have/missing flags per
    node, one column per live update — where ``live_window`` is the
    maximum number of simultaneously live updates
    (``updates_per_round * update_lifetime``).  Each row is stored as
    one packed bitmask (an arbitrary-precision integer, i.e. an array
    of machine words under the hood), so pairwise row operations in the
    exchange/push hot path are single C-level AND/OR/popcount calls
    instead of per-element work, and the per-round phases (broadcast,
    expiry, window slide) are one O(words) operation per node.

    Column ``c`` holds the update with id ``base + c``; as rounds
    release fresh updates the window slides forward (``advance_to``)
    so expired columns are recycled.  Id order equals bit order, which
    is what lets the planners select "newest"/"oldest" with
    :func:`top_bits` / :func:`bottom_bits`.
    """

    __slots__ = (
        "n_nodes",
        "updates_per_round",
        "lifetime",
        "capacity",
        "base",
        "have_bits",
        "missing_bits",
        "full_mask",
    )

    def __init__(self, n_nodes: int, updates_per_round: int, lifetime: int) -> None:
        if n_nodes < 1:
            raise SimulationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        self.updates_per_round = updates_per_round
        self.lifetime = lifetime
        self.capacity = updates_per_round * lifetime
        #: Update id held by column (bit) 0.
        self.base = 0
        #: Packed have/missing rows, one bitmask per node.
        self.have_bits: List[int] = [0] * n_nodes
        self.missing_bits: List[int] = [0] * n_nodes
        self.full_mask = (1 << self.capacity) - 1

    def view(self, node_id: int) -> "BitsetUpdateStore":
        """The per-node :class:`UpdateStore`-compatible view."""
        return BitsetUpdateStore(self, node_id)

    def as_matrices(self) -> "np.ndarray":
        """The (have, missing) state as one stacked boolean array.

        Shape ``(2, n_nodes, live_window)``; a debugging/analysis
        convenience — the simulation never materializes it.
        """
        dense = np.zeros((2, self.n_nodes, self.capacity), dtype=bool)
        for node_id in range(self.n_nodes):
            for col in iter_bits(self.have_bits[node_id]):
                dense[0, node_id, col] = True
            for col in iter_bits(self.missing_bits[node_id]):
                dense[1, node_id, col] = True
        return dense

    def advance_to(self, round_now: int) -> None:
        """Slide the window so round ``round_now``'s fresh ids fit.

        Called at the top of each round, before the broadcast: the
        bits of updates that expired at the end of the previous round
        are shifted out and their columns recycled for the fresh
        release.
        """
        new_base = max(0, round_now - self.lifetime + 1) * self.updates_per_round
        shift = new_base - self.base
        if shift <= 0:
            return
        have_bits = self.have_bits
        missing_bits = self.missing_bits
        for node_id in range(self.n_nodes):
            have_bits[node_id] >>= shift
            missing_bits[node_id] >>= shift
        self.base = new_base

    def col_of(self, update: int) -> int:
        """Column (bit position) holding ``update``; raises if out of window."""
        col = update - self.base
        if not 0 <= col < self.capacity:
            raise SimulationError(
                f"update {update} outside live window [{self.base}, "
                f"{self.base + self.capacity})"
            )
        return col

    def mask_of(self, updates: Iterable[int]) -> int:
        """Bitmask covering many updates (each validated)."""
        mask = 0
        for update in updates:
            mask |= 1 << self.col_of(update)
        return mask

    def announce_fresh(self, first_col: int, count: int) -> None:
        """Mark ``count`` fresh columns missing for every node.

        The fresh columns are guaranteed clean: they were either never
        used (warm-up) or zeroed by the ``advance_to`` shift.
        """
        mask = ((1 << count) - 1) << first_col
        missing_bits = self.missing_bits
        for node_id in range(self.n_nodes):
            missing_bits[node_id] |= mask

    def seed(self, node_ids: Iterable[int], col: int) -> None:
        """Flip one fresh column to held for the seeded nodes."""
        bit = 1 << col
        unset = ~bit
        for node_id in node_ids:
            self.have_bits[node_id] |= bit
            self.missing_bits[node_id] &= unset

    def clear_mask(self, mask: int) -> None:
        """Drop the masked columns from every row (end-of-life)."""
        unset = ~mask
        have_bits = self.have_bits
        missing_bits = self.missing_bits
        for node_id in range(self.n_nodes):
            have_bits[node_id] &= unset
            missing_bits[node_id] &= unset


class BitsetUpdateStore:
    """Per-node view into a :class:`BitsetPopulationStore`.

    Implements the :class:`UpdateStore` interface — ``have`` and
    ``missing`` materialize as real sets, so existing code (the
    attacker's ``dump_for``, the invariant tests) works unchanged —
    while the simulator's hot paths bypass the sets entirely and
    operate on the packed rows.
    """

    __slots__ = ("pool", "node_id")

    def __init__(self, pool: BitsetPopulationStore, node_id: int) -> None:
        self.pool = pool
        self.node_id = node_id

    def _ids(self, bits: int) -> Set[int]:
        base = self.pool.base
        return {base + col for col in iter_bits(bits)}

    @property
    def have(self) -> Set[int]:
        """The held live updates, materialized as a set."""
        return self._ids(self.pool.have_bits[self.node_id])

    @property
    def missing(self) -> Set[int]:
        """The missing live updates, materialized as a set."""
        return self._ids(self.pool.missing_bits[self.node_id])

    def announce(self, update: int, holds: bool) -> None:
        bit = 1 << self.pool.col_of(update)
        if holds:
            self.pool.have_bits[self.node_id] |= bit
            self.pool.missing_bits[self.node_id] &= ~bit
        else:
            self.pool.missing_bits[self.node_id] |= bit
            self.pool.have_bits[self.node_id] &= ~bit

    def receive(self, update: int) -> bool:
        bit = 1 << self.pool.col_of(update)
        if self.pool.have_bits[self.node_id] & bit:
            return False
        self.pool.have_bits[self.node_id] |= bit
        self.pool.missing_bits[self.node_id] &= ~bit
        return True

    def receive_all(self, updates: Iterable[int]) -> int:
        mask = self.pool.mask_of(updates)
        if not mask:
            return 0
        new = popcount(mask & ~self.pool.have_bits[self.node_id])
        self.pool.have_bits[self.node_id] |= mask
        self.pool.missing_bits[self.node_id] &= ~mask
        return new

    def expire(self, update: int) -> bool:
        bit = 1 << self.pool.col_of(update)
        held = bool(self.pool.have_bits[self.node_id] & bit)
        self.pool.have_bits[self.node_id] &= ~bit
        self.pool.missing_bits[self.node_id] &= ~bit
        return held

    @property
    def is_satiated(self) -> bool:
        """True when the node is missing no live update."""
        return not self.pool.missing_bits[self.node_id]

    def _col_below(self, cutoff_round: int) -> int:
        """Exclusive column bound for ids created before ``cutoff_round``."""
        bound = cutoff_round * self.pool.updates_per_round - self.pool.base
        return max(0, min(self.pool.capacity, bound))

    def missing_older_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Missing updates created strictly before ``cutoff_round``, oldest first."""
        bound = self._col_below(cutoff_round)
        old = self.pool.missing_bits[self.node_id] & ((1 << bound) - 1)
        base = self.pool.base
        return [base + col for col in iter_bits(old)]

    def have_newer_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Held updates created at or after ``cutoff_round``, newest first."""
        bound = self._col_below(cutoff_round)
        recent = self.pool.have_bits[self.node_id] >> bound
        base = self.pool.base
        newest_first = [base + bound + col for col in iter_bits(recent)]
        newest_first.reverse()
        return newest_first

    def has_missing_older_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any missing update was created strictly before ``cutoff_round``."""
        bound = self._col_below(cutoff_round)
        return bool(self.pool.missing_bits[self.node_id] & ((1 << bound) - 1))

    def has_have_newer_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any held update was created at or after ``cutoff_round``."""
        bound = self._col_below(cutoff_round)
        return bool(self.pool.have_bits[self.node_id] >> bound)


@dataclass
class UpdateLedger:
    """Global live-update bookkeeping.

    Attributes
    ----------
    updates_per_round:
        Copied from the configuration; fixes the id arithmetic.
    lifetime:
        Rounds each update stays live.
    live:
        Ids of all currently live updates.
    expiring:
        ``expiring[r]`` lists the updates that expire at the end of
        round ``r``.
    """

    updates_per_round: int
    lifetime: int
    live: Set[int] = field(default_factory=set)
    expiring: Dict[int, List[int]] = field(default_factory=dict)

    def release(self, round_now: int) -> List[int]:
        """Create this round's fresh updates; returns their ids."""
        fresh = [
            update_id(round_now, index, self.updates_per_round)
            for index in range(self.updates_per_round)
        ]
        self.live.update(fresh)
        expiry_round = round_now + self.lifetime - 1
        self.expiring.setdefault(expiry_round, []).extend(fresh)
        return fresh

    def expire_due(self, round_now: int) -> List[int]:
        """Remove and return the updates expiring at end of ``round_now``."""
        due = self.expiring.pop(round_now, [])
        for update in due:
            if update not in self.live:
                raise SimulationError(f"update {update} expired twice")
            self.live.discard(update)
        return due

    @property
    def live_count(self) -> int:
        """Number of currently live updates."""
        return len(self.live)
