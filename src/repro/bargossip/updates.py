"""Update identities, per-node stores, and lifetime accounting.

Updates are identified by a dense integer id: the update with index
``k`` released in round ``r`` (with ``u`` updates per round) has id
``r * u + k``.  This makes creation round and age pure arithmetic and
lets the hot paths work on plain ``set[int]``.

Two views of update state are kept:

* :class:`UpdateStore` — one per node: the live updates the node holds
  and the live updates it is still missing.  Both sets contain live
  (unexpired) updates only, so their sizes stay bounded by
  ``updates_per_round * update_lifetime`` regardless of run length.
* :class:`UpdateLedger` — global: which updates are currently live and
  when each expires, used to drive per-round expiry and the delivery
  metric ("fraction of updates received ... " in Figures 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from ..core.errors import SimulationError

__all__ = ["update_id", "creation_round", "UpdateStore", "UpdateLedger"]


def update_id(round_created: int, index: int, updates_per_round: int) -> int:
    """The dense integer id of update ``index`` of round ``round_created``."""
    if not 0 <= index < updates_per_round:
        raise SimulationError(
            f"index {index} out of range for {updates_per_round} updates per round"
        )
    return round_created * updates_per_round + index


def creation_round(update: int, updates_per_round: int) -> int:
    """Round in which ``update`` was released."""
    return update // updates_per_round


class UpdateStore:
    """The live-update state of a single node.

    Invariants (enforced in tests):

    * ``have`` and ``missing`` are disjoint;
    * ``have | missing`` equals the set of currently live updates, for
      every node, at every round boundary.
    """

    __slots__ = ("have", "missing")

    def __init__(self) -> None:
        self.have: Set[int] = set()
        self.missing: Set[int] = set()

    def announce(self, update: int, holds: bool) -> None:
        """Register a newly released live update.

        ``holds`` is True when the broadcaster seeded the update to
        this node.
        """
        if holds:
            self.have.add(update)
        else:
            self.missing.add(update)

    def receive(self, update: int) -> bool:
        """Record receipt of ``update``; returns True if it was new.

        Receiving an update the node already holds is a no-op (it can
        happen when the ideal attacker broadcasts out of band).
        """
        if update in self.have:
            return False
        self.missing.discard(update)
        self.have.add(update)
        return True

    def receive_all(self, updates: Iterable[int]) -> int:
        """Receive many updates; returns how many were new."""
        new = 0
        for update in updates:
            if self.receive(update):
                new += 1
        return new

    def expire(self, update: int) -> bool:
        """Drop ``update`` at end of life; returns True iff it was held.

        The return value is exactly the "delivered" bit of the paper's
        metric: the node either got the update while it was live or
        missed it forever.
        """
        if update in self.have:
            self.have.discard(update)
            return True
        self.missing.discard(update)
        return False

    @property
    def is_satiated(self) -> bool:
        """True when the node is missing no live update.

        This is the satiation state of Section 3 instantiated for
        gossip: a node with nothing to collect has nothing to gain from
        any exchange.
        """
        return not self.missing

    def missing_older_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Missing updates created strictly before ``cutoff_round``.

        Used by rational nodes to decide whether any missing update is
        "expiring relatively soon" and hence worth an optimistic push.
        Sorted oldest first (most urgent first).
        """
        old = [
            update
            for update in self.missing
            if creation_round(update, updates_per_round) < cutoff_round
        ]
        old.sort()
        return old

    def have_newer_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Held updates created at or after ``cutoff_round`` (recent ones).

        These are the "recently released updates it has to offer" in an
        optimistic push.  Sorted newest first.
        """
        recent = [
            update
            for update in self.have
            if creation_round(update, updates_per_round) >= cutoff_round
        ]
        recent.sort(reverse=True)
        return recent


@dataclass
class UpdateLedger:
    """Global live-update bookkeeping.

    Attributes
    ----------
    updates_per_round:
        Copied from the configuration; fixes the id arithmetic.
    lifetime:
        Rounds each update stays live.
    live:
        Ids of all currently live updates.
    expiring:
        ``expiring[r]`` lists the updates that expire at the end of
        round ``r``.
    """

    updates_per_round: int
    lifetime: int
    live: Set[int] = field(default_factory=set)
    expiring: Dict[int, List[int]] = field(default_factory=dict)

    def release(self, round_now: int) -> List[int]:
        """Create this round's fresh updates; returns their ids."""
        fresh = [
            update_id(round_now, index, self.updates_per_round)
            for index in range(self.updates_per_round)
        ]
        self.live.update(fresh)
        expiry_round = round_now + self.lifetime - 1
        self.expiring.setdefault(expiry_round, []).extend(fresh)
        return fresh

    def expire_due(self, round_now: int) -> List[int]:
        """Remove and return the updates expiring at end of ``round_now``."""
        due = self.expiring.pop(round_now, [])
        for update in due:
            if update not in self.live:
                raise SimulationError(f"update {update} expired twice")
            self.live.discard(update)
        return due

    @property
    def live_count(self) -> int:
        """Number of currently live updates."""
        return len(self.live)
