"""Update identities, per-node stores, and lifetime accounting.

Updates are identified by a dense integer id: the update with index
``k`` released in round ``r`` (with ``u`` updates per round) has id
``r * u + k``.  This makes creation round and age pure arithmetic and
lets the hot paths work on plain ``set[int]`` — or, in the vectorized
backend, on column offsets into a dense boolean matrix.

Three views of update state are kept:

* :class:`UpdateStore` — one per node: the live updates the node holds
  and the live updates it is still missing.  Both sets contain live
  (unexpired) updates only, so their sizes stay bounded by
  ``updates_per_round * update_lifetime`` regardless of run length.
* :class:`BitsetPopulationStore` / :class:`BitsetUpdateStore` — the
  vectorized equivalent (``GossipConfig.backend == "bitset"``): one
  dense boolean matrix of shape ``(n_nodes, live_window)`` per side
  (have/missing), owned by the simulator, with one lightweight
  per-node view implementing the :class:`UpdateStore` interface.
  Because an update lives exactly ``update_lifetime`` rounds, the live
  id window is a sliding interval of at most
  ``updates_per_round * update_lifetime`` ids; column ``c`` always
  holds update ``base + c``, so id order equals column order and the
  round phases become batch array operations.
* :class:`WordPopulationStore` — the fixed-width word-array backend
  (``GossipConfig.backend == "words"``): the same packed rows stored
  as 64-bit words in one flat buffer instead of arbitrary-precision
  ints.  The fixed layout buys two things the bitset backend cannot
  offer: whole-phase numpy sweeps over many rows at once (see the
  batched :class:`~repro.bargossip.simulator.InteractionEngine`
  dispatch) and the option to place the buffer in a
  ``multiprocessing.shared_memory`` block so shard workers mutate
  their rows in place instead of shipping them per round.
* :class:`UpdateLedger` — global: which updates are currently live and
  when each expires, used to drive per-round expiry and the delivery
  metric ("fraction of updates received ... " in Figures 1-3).
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..core.errors import ConfigurationError, SimulationError
from ..faults import fault_point

__all__ = [
    "update_id",
    "creation_round",
    "UpdateStore",
    "BitsetPopulationStore",
    "BitsetUpdateStore",
    "WordPopulationStore",
    "UpdateLedger",
    "popcount",
    "top_bits",
    "bottom_bits",
    "iter_bits",
    "words_to_int",
    "int_to_words",
    "word_popcounts",
    "word_popcount_matrix",
    "truncate_word_rows",
    "shared_memory_available",
    "WORD_BITS",
]


def update_id(round_created: int, index: int, updates_per_round: int) -> int:
    """The dense integer id of update ``index`` of round ``round_created``."""
    if not 0 <= index < updates_per_round:
        raise SimulationError(
            f"index {index} out of range for {updates_per_round} updates per round"
        )
    return round_created * updates_per_round + index


def creation_round(update: int, updates_per_round: int) -> int:
    """Round in which ``update`` was released."""
    return update // updates_per_round


class UpdateStore:
    """The live-update state of a single node.

    Invariants (enforced in tests):

    * ``have`` and ``missing`` are disjoint;
    * ``have | missing`` equals the set of currently live updates, for
      every node, at every round boundary.
    """

    __slots__ = ("have", "missing")

    def __init__(self) -> None:
        self.have: Set[int] = set()
        self.missing: Set[int] = set()

    def announce(self, update: int, holds: bool) -> None:
        """Register a newly released live update.

        ``holds`` is True when the broadcaster seeded the update to
        this node.
        """
        if holds:
            self.have.add(update)
        else:
            self.missing.add(update)

    def receive(self, update: int) -> bool:
        """Record receipt of ``update``; returns True if it was new.

        Receiving an update the node already holds is a no-op (it can
        happen when the ideal attacker broadcasts out of band).
        """
        if update in self.have:
            return False
        self.missing.discard(update)
        self.have.add(update)
        return True

    def receive_all(self, updates: Iterable[int]) -> int:
        """Receive many updates; returns how many were new."""
        new = 0
        for update in updates:
            if self.receive(update):
                new += 1
        return new

    def expire(self, update: int) -> bool:
        """Drop ``update`` at end of life; returns True iff it was held.

        The return value is exactly the "delivered" bit of the paper's
        metric: the node either got the update while it was live or
        missed it forever.
        """
        if update in self.have:
            self.have.discard(update)
            return True
        self.missing.discard(update)
        return False

    @property
    def is_satiated(self) -> bool:
        """True when the node is missing no live update.

        This is the satiation state of Section 3 instantiated for
        gossip: a node with nothing to collect has nothing to gain from
        any exchange.
        """
        return not self.missing

    def missing_older_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Missing updates created strictly before ``cutoff_round``.

        Used by rational nodes to decide whether any missing update is
        "expiring relatively soon" and hence worth an optimistic push.
        Sorted oldest first (most urgent first).
        """
        old = [
            update
            for update in self.missing
            if creation_round(update, updates_per_round) < cutoff_round
        ]
        old.sort()
        return old

    def have_newer_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Held updates created at or after ``cutoff_round`` (recent ones).

        These are the "recently released updates it has to offer" in an
        optimistic push.  Sorted newest first.
        """
        recent = [
            update
            for update in self.have
            if creation_round(update, updates_per_round) >= cutoff_round
        ]
        recent.sort(reverse=True)
        return recent

    def has_missing_older_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any missing update was created strictly before ``cutoff_round``."""
        return any(
            creation_round(update, updates_per_round) < cutoff_round
            for update in self.missing
        )

    def has_have_newer_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any held update was created at or after ``cutoff_round``."""
        return any(
            creation_round(update, updates_per_round) >= cutoff_round
            for update in self.have
        )


def _python_popcount(bits: int) -> int:
    """Pure-Python popcount: the pre-3.10 fallback behind :func:`popcount`."""
    return bin(bits).count("1")


#: Number of set bits; ``int.bit_count`` (one C call) on Python >= 3.10,
#: :func:`_python_popcount` otherwise.
popcount = (
    int.bit_count if hasattr(int, "bit_count") else _python_popcount
)


def top_bits(bits: int, count: int) -> int:
    """Mask of the ``count`` highest set bits of ``bits``."""
    out = 0
    for _ in range(count):
        if not bits:
            break
        highest = 1 << (bits.bit_length() - 1)
        out |= highest
        bits ^= highest
    return out


def bottom_bits(bits: int, count: int) -> int:
    """Mask of the ``count`` lowest set bits of ``bits``."""
    out = 0
    for _ in range(count):
        if not bits:
            break
        lowest = bits & -bits
        out |= lowest
        bits ^= lowest
    return out


def iter_bits(bits: int) -> Iterable[int]:
    """Yield the set bit positions of ``bits``, lowest first."""
    while bits:
        lowest = bits & -bits
        yield lowest.bit_length() - 1
        bits ^= lowest


class BitsetPopulationStore:
    """Dense live-update state for the whole population.

    Conceptually a pair of boolean matrices of shape
    ``(n_nodes, live_window)`` — one row of have/missing flags per
    node, one column per live update — where ``live_window`` is the
    maximum number of simultaneously live updates
    (``updates_per_round * update_lifetime``).  Each row is stored as
    one packed bitmask (an arbitrary-precision integer, i.e. an array
    of machine words under the hood), so pairwise row operations in the
    exchange/push hot path are single C-level AND/OR/popcount calls
    instead of per-element work, and the per-round phases (broadcast,
    expiry, window slide) are one O(words) operation per node.

    Column ``c`` holds the update with id ``base + c``; as rounds
    release fresh updates the window slides forward (``advance_to``)
    so expired columns are recycled.  Id order equals bit order, which
    is what lets the planners select "newest"/"oldest" with
    :func:`top_bits` / :func:`bottom_bits`.
    """

    __slots__ = (
        "n_nodes",
        "updates_per_round",
        "lifetime",
        "capacity",
        "base",
        "have_bits",
        "missing_bits",
        "full_mask",
    )

    def __init__(self, n_nodes: int, updates_per_round: int, lifetime: int) -> None:
        if n_nodes < 1:
            raise SimulationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        self.updates_per_round = updates_per_round
        self.lifetime = lifetime
        self.capacity = updates_per_round * lifetime
        #: Update id held by column (bit) 0.
        self.base = 0
        #: Packed have/missing rows, one bitmask per node.
        self.have_bits: List[int] = [0] * n_nodes
        self.missing_bits: List[int] = [0] * n_nodes
        self.full_mask = (1 << self.capacity) - 1

    def view(self, node_id: int) -> "BitsetUpdateStore":
        """The per-node :class:`UpdateStore`-compatible view."""
        return BitsetUpdateStore(self, node_id)

    def as_matrices(self) -> "np.ndarray":
        """The (have, missing) state as one stacked boolean array.

        Shape ``(2, n_nodes, live_window)``; a debugging/analysis
        convenience — the simulation never materializes it.
        """
        dense = np.zeros((2, self.n_nodes, self.capacity), dtype=bool)
        for node_id in range(self.n_nodes):
            for col in iter_bits(self.have_bits[node_id]):
                dense[0, node_id, col] = True
            for col in iter_bits(self.missing_bits[node_id]):
                dense[1, node_id, col] = True
        return dense

    def advance_to(self, round_now: int) -> None:
        """Slide the window so round ``round_now``'s fresh ids fit.

        Called at the top of each round, before the broadcast: the
        bits of updates that expired at the end of the previous round
        are shifted out and their columns recycled for the fresh
        release.
        """
        new_base = max(0, round_now - self.lifetime + 1) * self.updates_per_round
        shift = new_base - self.base
        if shift <= 0:
            return
        have_bits = self.have_bits
        missing_bits = self.missing_bits
        for node_id in range(self.n_nodes):
            have_bits[node_id] >>= shift
            missing_bits[node_id] >>= shift
        self.base = new_base

    def col_of(self, update: int) -> int:
        """Column (bit position) holding ``update``; raises if out of window."""
        col = update - self.base
        if not 0 <= col < self.capacity:
            raise SimulationError(
                f"update {update} outside live window [{self.base}, "
                f"{self.base + self.capacity})"
            )
        return col

    def mask_of(self, updates: Iterable[int]) -> int:
        """Bitmask covering many updates (each validated)."""
        mask = 0
        for update in updates:
            mask |= 1 << self.col_of(update)
        return mask

    def announce_fresh(self, first_col: int, count: int) -> None:
        """Mark ``count`` fresh columns missing for every node.

        The fresh columns are guaranteed clean: they were either never
        used (warm-up) or zeroed by the ``advance_to`` shift.
        """
        mask = ((1 << count) - 1) << first_col
        missing_bits = self.missing_bits
        for node_id in range(self.n_nodes):
            missing_bits[node_id] |= mask

    def seed(self, node_ids: Iterable[int], col: int) -> None:
        """Flip one fresh column to held for the seeded nodes."""
        bit = 1 << col
        unset = ~bit
        for node_id in node_ids:
            self.have_bits[node_id] |= bit
            self.missing_bits[node_id] &= unset

    def clear_mask(self, mask: int) -> None:
        """Drop the masked columns from every row (end-of-life)."""
        unset = ~mask
        have_bits = self.have_bits
        missing_bits = self.missing_bits
        for node_id in range(self.n_nodes):
            have_bits[node_id] &= unset
            missing_bits[node_id] &= unset

    def masked_have_popcounts(self, mask: int) -> "np.ndarray":
        """Per-node count of held updates under ``mask`` (expiry scoring)."""
        return np.fromiter(
            (popcount(row & mask) for row in self.have_bits),
            dtype=np.int64,
            count=self.n_nodes,
        )


class BitsetUpdateStore:
    """Per-node view into a :class:`BitsetPopulationStore`.

    Implements the :class:`UpdateStore` interface — ``have`` and
    ``missing`` materialize as real sets, so existing code (the
    attacker's ``dump_for``, the invariant tests) works unchanged —
    while the simulator's hot paths bypass the sets entirely and
    operate on the packed rows.
    """

    __slots__ = ("pool", "node_id")

    def __init__(self, pool: BitsetPopulationStore, node_id: int) -> None:
        self.pool = pool
        self.node_id = node_id

    def _ids(self, bits: int) -> Set[int]:
        base = self.pool.base
        return {base + col for col in iter_bits(bits)}

    @property
    def have(self) -> Set[int]:
        """The held live updates, materialized as a set."""
        return self._ids(self.pool.have_bits[self.node_id])

    @property
    def missing(self) -> Set[int]:
        """The missing live updates, materialized as a set."""
        return self._ids(self.pool.missing_bits[self.node_id])

    def announce(self, update: int, holds: bool) -> None:
        bit = 1 << self.pool.col_of(update)
        if holds:
            self.pool.have_bits[self.node_id] |= bit
            self.pool.missing_bits[self.node_id] &= ~bit
        else:
            self.pool.missing_bits[self.node_id] |= bit
            self.pool.have_bits[self.node_id] &= ~bit

    def receive(self, update: int) -> bool:
        bit = 1 << self.pool.col_of(update)
        if self.pool.have_bits[self.node_id] & bit:
            return False
        self.pool.have_bits[self.node_id] |= bit
        self.pool.missing_bits[self.node_id] &= ~bit
        return True

    def receive_all(self, updates: Iterable[int]) -> int:
        mask = self.pool.mask_of(updates)
        if not mask:
            return 0
        new = popcount(mask & ~self.pool.have_bits[self.node_id])
        self.pool.have_bits[self.node_id] |= mask
        self.pool.missing_bits[self.node_id] &= ~mask
        return new

    def expire(self, update: int) -> bool:
        bit = 1 << self.pool.col_of(update)
        held = bool(self.pool.have_bits[self.node_id] & bit)
        self.pool.have_bits[self.node_id] &= ~bit
        self.pool.missing_bits[self.node_id] &= ~bit
        return held

    @property
    def is_satiated(self) -> bool:
        """True when the node is missing no live update."""
        return not self.pool.missing_bits[self.node_id]

    def _col_below(self, cutoff_round: int) -> int:
        """Exclusive column bound for ids created before ``cutoff_round``."""
        bound = cutoff_round * self.pool.updates_per_round - self.pool.base
        return max(0, min(self.pool.capacity, bound))

    def missing_older_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Missing updates created strictly before ``cutoff_round``, oldest first."""
        bound = self._col_below(cutoff_round)
        old = self.pool.missing_bits[self.node_id] & ((1 << bound) - 1)
        base = self.pool.base
        return [base + col for col in iter_bits(old)]

    def have_newer_than(self, cutoff_round: int, updates_per_round: int) -> List[int]:
        """Held updates created at or after ``cutoff_round``, newest first."""
        bound = self._col_below(cutoff_round)
        recent = self.pool.have_bits[self.node_id] >> bound
        base = self.pool.base
        newest_first = [base + bound + col for col in iter_bits(recent)]
        newest_first.reverse()
        return newest_first

    def has_missing_older_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any missing update was created strictly before ``cutoff_round``."""
        bound = self._col_below(cutoff_round)
        return bool(self.pool.missing_bits[self.node_id] & ((1 << bound) - 1))

    def has_have_newer_than(self, cutoff_round: int, updates_per_round: int) -> bool:
        """Whether any held update was created at or after ``cutoff_round``."""
        bound = self._col_below(cutoff_round)
        return bool(self.pool.have_bits[self.node_id] >> bound)


# ----------------------------------------------------------------------
# Fixed-width word-array backend
# ----------------------------------------------------------------------

#: Bits per storage word of the word-array backend.
WORD_BITS = 64

_WORD_BYTES = WORD_BITS // 8


def words_to_int(row: "np.ndarray") -> int:
    """One packed word row as an arbitrary-precision bitmask."""
    return int.from_bytes(row.tobytes(), "little")


def int_to_words(bits: int, n_words: int) -> "np.ndarray":
    """An arbitrary-precision bitmask as a packed word row."""
    return np.frombuffer(
        bits.to_bytes(n_words * _WORD_BYTES, "little"), dtype=np.uint64
    )


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def word_popcounts(words: "np.ndarray") -> "np.ndarray":
        """Per-row popcount of packed word rows (last axis summed)."""
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)

    def word_popcount_matrix(words: "np.ndarray") -> "np.ndarray":
        """Per-*word* popcounts of packed rows (no axis reduction)."""
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0

    _POP16 = np.array(
        [_python_popcount(value) for value in range(1 << 16)], dtype=np.uint8
    )

    def word_popcounts(words: "np.ndarray") -> "np.ndarray":
        """Per-row popcount via a 16-bit lookup table (numpy < 2.0)."""
        halves = np.ascontiguousarray(words).view(np.uint16)
        return _POP16[halves].sum(axis=-1, dtype=np.int64)

    def word_popcount_matrix(words: "np.ndarray") -> "np.ndarray":
        """Per-*word* popcounts via the 16-bit table (numpy < 2.0)."""
        halves = np.ascontiguousarray(words).view(np.uint16)
        return _POP16[halves].reshape(words.shape + (4,)).sum(
            axis=-1, dtype=np.int64
        )


def truncate_word_rows(
    selected: "np.ndarray",
    available: "np.ndarray",
    counts: "np.ndarray",
    n_available: "np.ndarray",
    prefer_newest: bool,
) -> None:
    """Overwrite ``selected`` rows whose transfer count is capped.

    The batched planners start from ``selected = available`` (the
    common full-take case costs nothing); every row whose count falls
    short of its availability is re-picked with the exact top-k /
    bottom-k set-bit rule as one masked word sweep.  Per-word
    popcounts locate each capped row's *boundary word* — the word the
    k-th chosen bit lands in — in a single cumulative-sum pass; words
    strictly inside the kept side survive whole, words on the dropped
    side zero out, and the boundary words themselves split bit-by-bit
    through one ``unpackbits``/``cumsum``/``packbits`` pass over all
    capped rows at once.  Selection stays bit-identical to
    :func:`top_bits` / :func:`bottom_bits` (pinned by the parity tests
    against :func:`_truncate_word_rows_scalar`).
    """
    rows = np.flatnonzero(counts < n_available)
    if not len(rows):
        return
    avail = available[rows]
    need = np.asarray(counts, dtype=np.int64)[rows]
    n_words = avail.shape[1]
    per_word = word_popcount_matrix(avail)
    idx = np.arange(len(rows))
    if prefer_newest:
        # suffix[:, j] = set bits at word j and above; non-increasing
        # in j, so the boundary is the last word whose suffix still
        # reaches the target (argmax of the reversed True-prefix).
        suffix = per_word[:, ::-1].cumsum(axis=1)[:, ::-1]
        boundary = n_words - 1 - np.argmax(
            (suffix >= need[:, None])[:, ::-1], axis=1
        )
        outside = suffix[idx, boundary] - per_word[idx, boundary]
        full = np.arange(n_words)[None, :] > boundary[:, None]
    else:
        prefix = per_word.cumsum(axis=1)
        boundary = np.argmax(prefix >= need[:, None], axis=1)
        outside = prefix[idx, boundary] - per_word[idx, boundary]
        full = np.arange(n_words)[None, :] < boundary[:, None]
    # Bits still owed once every fully-kept word is taken; resolved
    # inside the boundary word (0 <= owed <= popcount(boundary word)).
    owed = need - outside
    result = avail * full
    octets = avail[idx, boundary].reshape(-1, 1).view(np.uint8)
    bits = np.unpackbits(octets, axis=1, bitorder="little")
    if prefer_newest:
        rank = bits[:, ::-1].cumsum(axis=1)[:, ::-1]
    else:
        rank = bits.cumsum(axis=1)
    keep = bits & (rank <= owed[:, None])
    packed = np.packbits(keep, axis=1, bitorder="little")
    result[idx, boundary] = packed.view(np.uint64).ravel()
    selected[rows] = result


def _truncate_word_rows_scalar(
    selected: "np.ndarray",
    available: "np.ndarray",
    counts: "np.ndarray",
    n_available: "np.ndarray",
    prefer_newest: bool,
) -> None:
    """Per-row oracle for :func:`truncate_word_rows` (parity tests).

    The original loop over arbitrary-precision row views; kept only so
    the vectorized sweep has an independently-simple reference.
    """
    take = top_bits if prefer_newest else bottom_bits
    n_words = available.shape[1]
    for row in np.flatnonzero(counts < n_available):
        count = int(counts[row])
        if count == 0:
            selected[row] = 0
        else:
            selected[row] = int_to_words(
                take(words_to_int(available[row]), count), n_words
            )


def shared_memory_available() -> bool:
    """Whether a ``multiprocessing.shared_memory`` block can be created.

    Containers without a usable ``/dev/shm`` raise at creation time;
    callers (bench passes, the CI parity matrix) skip the shared-memory
    path gracefully instead of failing.
    """
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=_WORD_BYTES)
    except (ImportError, OSError):
        return False
    # The probe segment must not outlive this call on any exit path: a
    # failing close() may not skip the unlink, and a failing unlink()
    # (e.g. another probe raced us on a shared tmpfs) must not leak out
    # of a capability check.
    usable = True
    try:
        probe.close()
    except (BufferError, OSError):
        usable = False
    try:
        probe.unlink()
    except (FileNotFoundError, OSError):
        usable = False
    return usable


class _WordRows:
    """Int-compatible view over packed word rows.

    Exposes a ``(n_rows, n_words)`` uint64 array with the
    ``have_bits[i] -> int`` / ``have_bits[i] = int`` protocol of
    :class:`BitsetPopulationStore`, so every arbitrary-precision
    consumer — :class:`BitsetUpdateStore` views, the per-pair
    exchange/push planners, shard extraction — works unchanged against
    the word-array backend.  The hot paths bypass this view and sweep
    the underlying array directly.

    The view translates between logical bitmasks (bit 0 == window
    ``base``) and the store's physical layout, whose window floats at
    ``store.offset`` bits into each row under the ring scheme.
    """

    __slots__ = ("_words", "_n_bytes", "_store")

    def __init__(self, words: "np.ndarray", store: "WordPopulationStore") -> None:
        self._words = words
        self._n_bytes = words.shape[1] * _WORD_BYTES
        self._store = store

    def __len__(self) -> int:
        return len(self._words)

    def __getitem__(self, row: int) -> int:
        raw = int.from_bytes(self._words[row].tobytes(), "little")
        return raw >> self._store.offset

    def __setitem__(self, row: int, bits: int) -> None:
        self._words[row] = np.frombuffer(
            (bits << self._store.offset).to_bytes(self._n_bytes, "little"),
            dtype=np.uint64,
        )

    def __iter__(self) -> Iterable[int]:
        flat = self._words.tobytes()
        stride = self._n_bytes
        offset = self._store.offset
        for start in range(0, len(flat), stride):
            yield int.from_bytes(flat[start : start + stride], "little") >> offset


def _release_shared_block(shm: object, owner: bool) -> None:
    """Best-effort close (+ unlink for the creator) of one shm block.

    Runs from ``weakref.finalize`` — possibly at interpreter exit,
    possibly after another process already unlinked the segment — so
    every failure is swallowed.
    """
    try:
        shm.close()
    except (BufferError, OSError):
        pass
    if owner:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


class WordPopulationStore:
    """Dense live-update state as fixed-width word rows.

    The third population-store backend (``GossipConfig.backend ==
    "words"``): semantically identical to
    :class:`BitsetPopulationStore` — same columns, same base/window
    arithmetic, bit-identical traces — but each row is
    ``ceil((capacity + 63) / 64)`` 64-bit words in one flat numpy
    buffer instead of a Python int, with the live window floating
    ``offset = base % 64`` bits into the row (the ring scheme of
    :meth:`advance_to`).  The fixed layout is what enables

    * whole-population numpy sweeps (window slide, broadcast, expiry
      scoring and the batched exchange/push phases are array
      operations over all rows at once), and
    * ``memory="shared"``: the buffer lives in a
      ``multiprocessing.shared_memory`` block, so shard workers attach
      once and mutate their rows in place — per-round messages carry
      counters and eviction decisions, never rows.

    Lifecycle of the shared block is explicit: the creating process
    owns the segment (``close`` + ``unlink``), attached processes only
    ``close``.  A ``weakref.finalize`` guard (and an ``atexit`` sweep)
    releases whatever a crashed round leaves behind.
    """

    def __init__(
        self,
        n_nodes: int,
        updates_per_round: int,
        lifetime: int,
        memory: str = "heap",
        shm_name: Optional[str] = None,
        extra_int64: int = 0,
    ) -> None:
        if n_nodes < 1:
            raise SimulationError(f"n_nodes must be >= 1, got {n_nodes}")
        if memory not in ("heap", "shared"):
            raise ConfigurationError(
                f"memory must be 'heap' or 'shared', got {memory!r}"
            )
        if shm_name is not None and memory != "shared":
            raise ConfigurationError("shm_name requires memory='shared'")
        if extra_int64 < 0:
            raise ConfigurationError(
                f"extra_int64 must be >= 0, got {extra_int64}"
            )
        self.n_nodes = n_nodes
        self.updates_per_round = updates_per_round
        self.lifetime = lifetime
        self.capacity = updates_per_round * lifetime
        self.base = 0
        self.full_mask = (1 << self.capacity) - 1
        self.memory = memory
        # One slack word beyond ceil(capacity / 64): under the ring
        # scheme the live window floats up to 63 bits into the row
        # (``offset``), so a row must hold ``capacity + 63`` bits.
        self.words_per_row = (self.capacity + 2 * (WORD_BITS - 1)) // WORD_BITS
        #: Extra int64 slots reserved at the tail of the flat buffer —
        #: the columnar counter region when ``memory == "shared"``
        #: (attaching processes must pass the creator's count so the
        #: row/extra split lands on the same offsets).
        self.extra_int64 = extra_int64
        n_words = 2 * n_nodes * self.words_per_row + extra_int64
        self.owns_shm = memory == "shared" and shm_name is None
        shm = None
        if memory == "shared":
            from multiprocessing import shared_memory

            if shm_name is None:
                shm = shared_memory.SharedMemory(
                    create=True, size=n_words * _WORD_BYTES
                )
            else:
                # Injection site sits *before* the attach so a faulted
                # attach (chaos tests) leaves no segment handle behind.
                fault_point("shm:attach")
                # Attaching re-registers the name with the resource
                # tracker; pool workers share the coordinator's tracker
                # (fork and POSIX spawn both inherit its fd), so the
                # duplicate collapses and the creator's unlink settles
                # the books.
                shm = shared_memory.SharedMemory(name=shm_name)
            flat = np.frombuffer(shm.buf, dtype=np.uint64, count=n_words)
            if self.owns_shm:
                flat[:] = 0
        else:
            flat = np.zeros(n_words, dtype=np.uint64)
        rows = n_nodes * self.words_per_row
        #: Packed have/missing rows, ``(n_nodes, words_per_row)`` uint64.
        self.have_words = flat[:rows].reshape(n_nodes, self.words_per_row)
        self.missing_words = flat[rows : 2 * rows].reshape(
            n_nodes, self.words_per_row
        )
        #: The reserved tail region viewed as int64 (empty when
        #: ``extra_int64 == 0``); zeroed with the rest of the buffer.
        self.extra = flat[2 * rows :].view(np.int64)
        #: Int-compatible row views (the BitsetPopulationStore protocol).
        self.have_bits = _WordRows(self.have_words, self)
        self.missing_bits = _WordRows(self.missing_words, self)
        # _shm enters the instance dict after the array views so an
        # un-closed store tears down views first, letting the segment's
        # own __del__ close its mmap without exported-buffer errors.
        self._shm = shm
        self._finalizer = (
            weakref.finalize(self, _release_shared_block, shm, self.owns_shm)
            if shm is not None
            else None
        )
        if shm is not None:
            _LIVE_SHARED_STORES.add(self)

    # -- shared-block lifecycle ----------------------------------------

    @property
    def shm_name(self) -> Optional[str]:
        """Name of the backing shared block (None on the heap)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Release this process's mapping of the shared block.

        Idempotent; a heap store is a no-op.  The arrays die with the
        mapping, so the store must not be used afterwards.  A creator
        keeps its unlink responsibility (and its crash-safety
        finalizer) until :meth:`unlink` runs.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self._pending_unlink = shm if self.owns_shm else None
        self.have_words = self.missing_words = self.extra = None
        self.have_bits = self.missing_bits = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray exported views
            pass
        if not self.owns_shm:
            self._detach_guard()

    def unlink(self) -> None:
        """Destroy the shared segment (creator only; idempotent)."""
        if not self.owns_shm:
            return
        if self._shm is not None:
            self.close()
        shm = getattr(self, "_pending_unlink", None)
        self._pending_unlink = None
        if shm is not None:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._detach_guard()

    def _detach_guard(self) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _LIVE_SHARED_STORES.discard(self)

    def release(self) -> None:
        """Close and, when this process created the block, unlink it."""
        self.close()
        self.unlink()

    # -- BitsetPopulationStore protocol --------------------------------

    def view(self, node_id: int) -> "BitsetUpdateStore":
        """The per-node :class:`UpdateStore`-compatible view."""
        return BitsetUpdateStore(self, node_id)

    def as_matrices(self) -> "np.ndarray":
        """The (have, missing) state as one stacked boolean array."""
        dense = np.zeros((2, self.n_nodes, self.capacity), dtype=bool)
        for node_id in range(self.n_nodes):
            for col in iter_bits(self.have_bits[node_id]):
                dense[0, node_id, col] = True
            for col in iter_bits(self.missing_bits[node_id]):
                dense[1, node_id, col] = True
        return dense

    def col_of(self, update: int) -> int:
        """Column (bit position) holding ``update``; raises if out of window."""
        col = update - self.base
        if not 0 <= col < self.capacity:
            raise SimulationError(
                f"update {update} outside live window [{self.base}, "
                f"{self.base + self.capacity})"
            )
        return col

    def mask_of(self, updates: Iterable[int]) -> int:
        """Bitmask covering many updates (each validated)."""
        mask = 0
        for update in updates:
            mask |= 1 << self.col_of(update)
        return mask

    @property
    def offset(self) -> int:
        """Physical bit position of logical column 0 (ring scheme).

        A pure function of ``base``, so shard slices that copy rows and
        adopt the coordinator's ``base`` land on the same layout with
        no extra bookkeeping: update ``u`` always lives at physical bit
        ``u - WORD_BITS * (base // WORD_BITS)`` of its row.
        """
        return self.base % WORD_BITS

    def mask_words(self, mask: int) -> "np.ndarray":
        """An in-window (logical) bitmask as one packed word row."""
        return int_to_words(mask << self.offset, self.words_per_row)

    def advance_to(self, round_now: int) -> None:
        """Slide the window so round ``round_now``'s fresh ids fit.

        Ring/compaction scheme: rather than bit-shifting every word of
        every row each round, the window *floats* inside the row — bit
        0 of the buffer stays pinned to update ``64 * (base // 64)``
        and logical column 0 sits at bit ``offset``.  A slide then
        costs one masked AND over the leading word(s) to zero the
        expired columns, plus a whole-word left compaction only when
        the window crosses a 64-bit boundary (every
        ``64 / updates_per_round`` rounds at the paper config).  The
        recycled columns come back zeroed for the fresh release, and
        id order still equals bit order, which the top/bottom-k
        planners rely on.
        """
        new_base = max(0, round_now - self.lifetime + 1) * self.updates_per_round
        shift = new_base - self.base
        if shift <= 0:
            return
        if shift >= self.capacity:
            self.have_words[:] = 0
            self.missing_words[:] = 0
            self.base = new_base
            return
        # Zero the expired columns: physical bits [offset, offset+shift).
        offset = self.offset
        drop = int_to_words(((1 << shift) - 1) << offset, self.words_per_row)
        last = (offset + shift - 1) // WORD_BITS
        keep = ~drop[: last + 1]
        self.have_words[:, : last + 1] &= keep
        self.missing_words[:, : last + 1] &= keep
        # Compact away fully-expired leading words (one memmove; with
        # shift < capacity the surviving window always fits — see the
        # slack word in ``words_per_row``).
        whole = new_base // WORD_BITS - self.base // WORD_BITS
        if whole:
            n_words = self.words_per_row
            for rows in (self.have_words, self.missing_words):
                rows[:, : n_words - whole] = rows[:, whole:]
                rows[:, n_words - whole :] = 0
        self.base = new_base

    def announce_fresh(self, first_col: int, count: int) -> None:
        """Mark ``count`` fresh columns missing for every node."""
        mask = ((1 << count) - 1) << first_col
        self.missing_words |= self.mask_words(mask)

    def seed(self, node_ids: Iterable[int], col: int) -> None:
        """Flip one fresh column to held for the seeded nodes."""
        rows = list(node_ids)
        word, bit = divmod(col + self.offset, WORD_BITS)
        set_bit = np.uint64(1 << bit)
        self.have_words[rows, word] |= set_bit
        self.missing_words[rows, word] &= ~set_bit

    def clear_mask(self, mask: int) -> None:
        """Drop the masked columns from every row (end-of-life)."""
        keep = ~self.mask_words(mask)
        self.have_words &= keep
        self.missing_words &= keep

    def masked_have_popcounts(self, mask: int) -> "np.ndarray":
        """Per-node count of held updates under ``mask`` (expiry scoring)."""
        return word_popcounts(self.have_words & self.mask_words(mask))

    def memory_breakdown(self) -> Dict[str, int]:
        """Exact flat-buffer bytes, split by role.

        ``word_row_bytes`` covers both packed row matrices (have +
        missing); ``extra_bytes`` is the reserved tail — the columnar
        counter region when ``memory == "shared"``, empty otherwise.
        The budget is the scaling headline: bytes here grow linearly
        with ``n_nodes`` and are independent of run length.
        """
        word_row_bytes = 2 * self.n_nodes * self.words_per_row * _WORD_BYTES
        extra_bytes = self.extra_int64 * _WORD_BYTES
        return {
            "word_row_bytes": word_row_bytes,
            "extra_bytes": extra_bytes,
            "total_bytes": word_row_bytes + extra_bytes,
        }


#: Live shared-memory stores, swept by ``atexit`` so a crashed run
#: cannot leak segments (normal exits release explicitly first).
_LIVE_SHARED_STORES: "weakref.WeakSet[WordPopulationStore]" = weakref.WeakSet()


@atexit.register
def _release_live_shared_stores() -> None:  # pragma: no cover - exit hook
    for store in list(_LIVE_SHARED_STORES):
        store.release()


@dataclass
class UpdateLedger:
    """Global live-update bookkeeping.

    Attributes
    ----------
    updates_per_round:
        Copied from the configuration; fixes the id arithmetic.
    lifetime:
        Rounds each update stays live.
    live:
        Ids of all currently live updates.
    expiring:
        ``expiring[r]`` lists the updates that expire at the end of
        round ``r``.
    """

    updates_per_round: int
    lifetime: int
    live: Set[int] = field(default_factory=set)
    expiring: Dict[int, List[int]] = field(default_factory=dict)

    def release(self, round_now: int) -> List[int]:
        """Create this round's fresh updates; returns their ids."""
        fresh = [
            update_id(round_now, index, self.updates_per_round)
            for index in range(self.updates_per_round)
        ]
        self.live.update(fresh)
        expiry_round = round_now + self.lifetime - 1
        self.expiring.setdefault(expiry_round, []).extend(fresh)
        return fresh

    def expire_due(self, round_now: int) -> List[int]:
        """Remove and return the updates expiring at end of ``round_now``."""
        due = self.expiring.pop(round_now, [])
        for update in due:
            if update not in self.live:
                raise SimulationError(f"update {update} expired twice")
            self.live.discard(update)
        return due

    @property
    def live_count(self) -> int:
        """Number of currently live updates."""
        return len(self.live)
