"""Gossip node state and behaviour decisions.

A :class:`GossipNode` bundles a node's live-update store with its BAR
behaviour class, the attack-assigned target group, per-node service
counters, and the two behaviour decisions the protocol leaves open:

* *whether to initiate an optimistic push* — rational nodes push only
  when missing old updates; obedient nodes push whenever they have
  recent updates to offer;
* *whether to respond to a push* — any correct node responds when it
  gains at least one update, declines otherwise (so a fully satiated
  node declines: it cannot gain).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.behaviors import Behavior
from .config import GossipConfig
from .updates import UpdateStore

__all__ = ["TargetGroup", "ServiceCounters", "GossipNode"]


class TargetGroup(enum.Enum):
    """How the attacker classifies a node (paper Section 2).

    The attacker "divides the nodes into two groups": *satiated* nodes
    receive as much service as he can deliver; *isolated* nodes receive
    none.  His own nodes form the third class.  Figures 1-3 plot the
    delivery fraction of the isolated group.
    """

    ATTACKER = "attacker"
    SATIATED = "satiated"
    ISOLATED = "isolated"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ServiceCounters:
    """Per-node tallies used by reports and the reporting defense."""

    updates_sent: int = 0
    updates_received: int = 0
    junk_sent: int = 0
    junk_received: int = 0
    exchanges_initiated: int = 0
    exchanges_nonempty: int = 0
    pushes_initiated: int = 0
    pushes_nonempty: int = 0

    def record_exchange(self, sent: int, received: int) -> None:
        self.updates_sent += sent
        self.updates_received += received


@dataclass
class GossipNode:
    """One participant in the gossip system."""

    node_id: int
    behavior: Behavior
    group: TargetGroup
    store: UpdateStore = field(default_factory=UpdateStore)
    counters: ServiceCounters = field(default_factory=ServiceCounters)
    evicted: bool = False

    @property
    def is_attacker(self) -> bool:
        """Whether this node is controlled by the attacker."""
        return self.group is TargetGroup.ATTACKER

    @property
    def is_correct(self) -> bool:
        """Whether this node runs the real protocol (possibly rationally)."""
        return not self.is_attacker

    @property
    def is_satiated(self) -> bool:
        """Whether the node currently misses no live update."""
        return self.store.is_satiated

    def wants_to_push(self, config: GossipConfig, round_now: int) -> bool:
        """Behaviour decision: initiate an optimistic push this round?

        Rational: only when some missing update is old enough to be
        "expiring relatively soon" — there is otherwise nothing to
        gain.  Obedient: whenever there is a recent update to offer
        (the recommended protocol's behaviour, followed even without
        personal gain).  Evicted and attacker nodes never push through
        this path (the attacker's pushes are driven by its strategy).
        """
        if self.evicted or self.is_attacker:
            return False
        old_cutoff = round_now - config.push_age_threshold + 1
        has_old_needs = self.store.has_missing_older_than(
            old_cutoff, config.updates_per_round
        )
        if self.behavior is Behavior.RATIONAL:
            return has_old_needs
        recent_cutoff = round_now - config.push_recent_window + 1
        has_offers = self.store.has_have_newer_than(
            recent_cutoff, config.updates_per_round
        )
        return has_old_needs or has_offers

    def responds_to_push(self, gain: int) -> bool:
        """Behaviour decision: accept an incoming push offer?

        A correct node accepts iff it gains at least one update.  This
        single rule covers both behaviours: obedient nodes follow the
        protocol (which says accept useful offers), and rational nodes
        accept exactly when profitable.  A satiated node can never gain
        and therefore always declines — the satiation-compatibility at
        the heart of the attack.
        """
        if self.evicted or self.is_attacker:
            return False
        return gain > 0
