"""Gossip node state and behaviour decisions.

A :class:`GossipNode` bundles a node's live-update store with its BAR
behaviour class, the attack-assigned target group, per-node service
counters, and the two behaviour decisions the protocol leaves open:

* *whether to initiate an optimistic push* — rational nodes push only
  when missing old updates; obedient nodes push whenever they have
  recent updates to offer;
* *whether to respond to a push* — any correct node responds when it
  gains at least one update, declines otherwise (so a fully satiated
  node declines: it cannot gain).

Since the columnar :class:`~repro.bargossip.population.Population`
refactor, the per-node objects the simulator hands out are lightweight
*views*: ``counters``, ``group`` and ``evicted`` read and write columns
of the simulation-owned arrays (mirroring how the packed stores already
materialize ``have``/``missing`` on access), while a standalone
``GossipNode(...)`` — as unit tests construct — keeps plain per-object
state.  Either way, all counter mutation flows through the single
:meth:`ServiceCounters.add` API so the columnar view intercepts every
write.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.behaviors import Behavior
from ..core.errors import SimulationError
from ..core.metrics import GROUP_CODE_ORDER
from .config import GossipConfig
from .updates import UpdateStore

__all__ = [
    "TargetGroup",
    "COUNTER_FIELDS",
    "COUNTER_INDEX",
    "COUNTER_MAX",
    "ServiceCounters",
    "CounterColumnView",
    "GossipNode",
    "GROUP_CODES",
    "GROUPS_BY_CODE",
    "BEHAVIOR_CODES",
    "BEHAVIORS_BY_CODE",
]


class TargetGroup(enum.Enum):
    """How the attacker classifies a node (paper Section 2).

    The attacker "divides the nodes into two groups": *satiated* nodes
    receive as much service as he can deliver; *isolated* nodes receive
    none.  His own nodes form the third class.  Figures 1-3 plot the
    delivery fraction of the isolated group.
    """

    ATTACKER = "attacker"
    SATIATED = "satiated"
    ISOLATED = "isolated"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The service-counter columns, in storage order.  This tuple *is* the
#: schema of the columnar counters matrix: column ``i`` of a
#: ``Population``'s ``(n_nodes, 8)`` buffer holds field
#: ``COUNTER_FIELDS[i]``, and the shard protocol's counter deltas use
#: the same order.
COUNTER_FIELDS: Tuple[str, ...] = (
    "updates_sent",
    "updates_received",
    "junk_sent",
    "junk_received",
    "exchanges_initiated",
    "exchanges_nonempty",
    "pushes_initiated",
    "pushes_nonempty",
)

#: Field name -> column index of the counters matrix.
COUNTER_INDEX: Dict[str, int] = {
    name: index for index, name in enumerate(COUNTER_FIELDS)
}

#: Largest value a counter column may hold.  The columns are int64; the
#: guard keeps silent two's-complement wraparound (numpy's overflow
#: behaviour) from ever corrupting a tally — any write beyond this
#: raises instead.
COUNTER_MAX = 2**63 - 1

#: Small integer codes for the columnar ``group`` / ``behavior``
#: arrays.  Derived from :data:`~repro.core.metrics.GROUP_CODE_ORDER`
#: (the enum values are exactly its names), so the expiry-scoring
#: reduction in ``core.metrics`` and the population columns can never
#: disagree on the encoding.
GROUPS_BY_CODE: Tuple[TargetGroup, ...] = tuple(
    TargetGroup(name) for name in GROUP_CODE_ORDER
)
GROUP_CODES: Dict[TargetGroup, int] = {
    group: code for code, group in enumerate(GROUPS_BY_CODE)
}
BEHAVIOR_CODES: Dict[Behavior, int] = {
    behavior: code for code, behavior in enumerate(Behavior)
}
BEHAVIORS_BY_CODE: Tuple[Behavior, ...] = tuple(Behavior)


def _check_counter_value(name: str, value: int) -> None:
    """The overflow/underflow guard shared by both counter backends."""
    if value < 0:
        raise SimulationError(
            f"counter {name} would go negative ({value}); deltas must be "
            "non-negative"
        )
    if value > COUNTER_MAX:
        raise SimulationError(
            f"counter {name} overflows the int64 column ({value} > "
            f"{COUNTER_MAX})"
        )


class _CounterProtocol:
    """The behaviour both counter implementations share.

    Subclasses provide per-field attributes and :meth:`add`; the
    ``record_*`` helpers and the value-equality contract (compare the
    eight tallies, accept any object exposing the same fields — a
    plain dataclass and a column view with equal tallies are equal)
    live here once, so the two implementations cannot drift.
    """

    __slots__ = ()

    def record_exchange(self, sent: int, received: int) -> None:
        """Book one interaction's useful-update transfer, both ways."""
        self.add(updates_sent=sent, updates_received=received)

    def record_nonempty_exchange(self, sent: int, received: int) -> None:
        """Book one balanced exchange that actually moved updates."""
        self.add(
            updates_sent=sent, updates_received=received, exchanges_nonempty=1
        )

    def as_tuple(self) -> Tuple[int, ...]:
        """The eight tallies in :data:`COUNTER_FIELDS` order."""
        return tuple(getattr(self, name) for name in COUNTER_FIELDS)

    def __eq__(self, other: object) -> bool:
        try:
            other_values = tuple(
                getattr(other, name) for name in COUNTER_FIELDS
            )
        except AttributeError:
            return NotImplemented
        return self.as_tuple() == other_values

    __hash__ = None  # mutable tallies; never used as dict keys


@dataclass(eq=False)
class ServiceCounters(_CounterProtocol):
    """Per-node tallies used by reports and the reporting defense.

    All mutation goes through :meth:`add` (and the ``record_*``
    helpers built on it) so the columnar
    :class:`CounterColumnView` can substitute array writes for
    attribute writes without any caller noticing.
    """

    updates_sent: int = 0
    updates_received: int = 0
    junk_sent: int = 0
    junk_received: int = 0
    exchanges_initiated: int = 0
    exchanges_nonempty: int = 0
    pushes_initiated: int = 0
    pushes_nonempty: int = 0

    def add(self, **deltas: int) -> None:
        """Bump counters by the given non-negative per-field deltas."""
        for name, amount in deltas.items():
            if name not in COUNTER_INDEX:
                raise SimulationError(f"unknown counter field {name!r}")
            value = getattr(self, name) + amount
            _check_counter_value(name, value)
            setattr(self, name, value)


class CounterColumnView(_CounterProtocol):
    """One node's :class:`ServiceCounters`, backed by counter columns.

    A view into row ``row`` of a columnar
    :class:`~repro.bargossip.population.Population`'s ``(n_nodes, 8)``
    int64 counters matrix.  Implements the complete
    :class:`ServiceCounters` protocol — per-field attributes (read and
    write), :meth:`add`, the ``record_*`` helpers, value equality — so
    every existing consumer (defenses, reports, parity tests) works
    unchanged, while the batched interaction paths bypass the view and
    scatter-add whole phases into the matrix directly.

    The view holds the owning population, not the matrix: if the
    population re-homes its columns (a shared-memory store being
    released copies them to the heap first), live views follow.
    """

    __slots__ = ("_population", "_row")

    def __init__(self, population, row: int) -> None:
        self._population = population
        self._row = row

    def add(self, **deltas: int) -> None:
        """Bump counters by the given non-negative per-field deltas."""
        counters = self._population.counters
        row = self._row
        index_of = COUNTER_INDEX
        for name, amount in deltas.items():
            index = index_of.get(name)
            if index is None:
                raise SimulationError(f"unknown counter field {name!r}")
            current = counters[row, index]
            # Guard before adding: arbitrary-precision comparison, so
            # an overflowing delta raises instead of wrapping int64.
            if amount < 0 or amount > COUNTER_MAX - current:
                _check_counter_value(name, int(current) + amount)
            counters[row, index] = current + amount

    def as_tuple(self) -> Tuple[int, ...]:
        return tuple(int(v) for v in self._population.counters[self._row])

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={value}"
            for name, value in zip(COUNTER_FIELDS, self.as_tuple())
        )
        return f"CounterColumnView({fields})"


def _make_counter_property(index: int, name: str):
    def _get(self: CounterColumnView) -> int:
        return int(self._population.counters[self._row, index])

    def _set(self: CounterColumnView, value: int) -> None:
        _check_counter_value(name, value)
        self._population.counters[self._row, index] = value

    return property(_get, _set)


for _index, _name in enumerate(COUNTER_FIELDS):
    setattr(CounterColumnView, _name, _make_counter_property(_index, _name))
del _index, _name


class GossipNode:
    """One participant in the gossip system.

    Constructed either *standalone* (unit tests, ad-hoc experiments) —
    behaviour, group, counters and the evicted flag live on the object
    — or as a *population view* via ``population=/row=``, in which case
    ``group``, ``evicted`` and ``counters`` delegate to the simulation's
    columnar arrays and the object is nothing but an id, a behaviour
    tag, and a store view.
    """

    __slots__ = (
        "node_id",
        "behavior",
        "store",
        "_population",
        "_row",
        "_group",
        "_counters",
        "_evicted",
        "_is_attacker",
    )

    def __init__(
        self,
        node_id: int,
        behavior: Behavior,
        group: TargetGroup,
        store: Optional[UpdateStore] = None,
        counters: Optional[ServiceCounters] = None,
        evicted: bool = False,
        population=None,
        row: Optional[int] = None,
    ) -> None:
        self.node_id = node_id
        self.behavior = behavior
        self._population = population
        self._row = node_id if row is None else row
        self._is_attacker = group is TargetGroup.ATTACKER
        if population is not None:
            population.group_codes[self._row] = GROUP_CODES[group]
            population.behavior_codes[self._row] = BEHAVIOR_CODES[behavior]
            population.evicted[self._row] = evicted
            self._group = None
            self._counters = None
            self._evicted = False
        else:
            self._group = group
            self._counters = counters
            self._evicted = evicted
        self.store = store if store is not None else UpdateStore()

    # -- population-backed columns -------------------------------------

    @property
    def group(self) -> TargetGroup:
        if self._population is not None:
            return GROUPS_BY_CODE[int(self._population.group_codes[self._row])]
        return self._group

    @group.setter
    def group(self, value: TargetGroup) -> None:
        self._is_attacker = value is TargetGroup.ATTACKER
        if self._population is not None:
            self._population.group_codes[self._row] = GROUP_CODES[value]
        else:
            self._group = value

    @property
    def counters(self):
        """The node's service counters (lazily materialized view)."""
        if self._counters is None:
            if self._population is not None:
                self._counters = CounterColumnView(self._population, self._row)
            else:
                self._counters = ServiceCounters()
        return self._counters

    @property
    def evicted(self) -> bool:
        if self._population is not None:
            return bool(self._population.evicted[self._row])
        return self._evicted

    @evicted.setter
    def evicted(self, value: bool) -> None:
        if self._population is not None:
            self._population.evicted[self._row] = value
        else:
            self._evicted = value

    # -- role flags ----------------------------------------------------

    @property
    def is_attacker(self) -> bool:
        """Whether this node is controlled by the attacker."""
        return self._is_attacker

    @property
    def is_correct(self) -> bool:
        """Whether this node runs the real protocol (possibly rationally)."""
        return not self._is_attacker

    @property
    def is_satiated(self) -> bool:
        """Whether the node currently misses no live update."""
        return self.store.is_satiated

    # -- behaviour decisions -------------------------------------------

    def wants_to_push(self, config: GossipConfig, round_now: int) -> bool:
        """Behaviour decision: initiate an optimistic push this round?

        Rational: only when some missing update is old enough to be
        "expiring relatively soon" — there is otherwise nothing to
        gain.  Obedient: whenever there is a recent update to offer
        (the recommended protocol's behaviour, followed even without
        personal gain).  Evicted and attacker nodes never push through
        this path (the attacker's pushes are driven by its strategy).
        """
        if self.evicted or self.is_attacker:
            return False
        old_cutoff = round_now - config.push_age_threshold + 1
        has_old_needs = self.store.has_missing_older_than(
            old_cutoff, config.updates_per_round
        )
        if self.behavior is Behavior.RATIONAL:
            return has_old_needs
        recent_cutoff = round_now - config.push_recent_window + 1
        has_offers = self.store.has_have_newer_than(
            recent_cutoff, config.updates_per_round
        )
        return has_old_needs or has_offers

    def responds_to_push(self, gain: int) -> bool:
        """Behaviour decision: accept an incoming push offer?

        A correct node accepts iff it gains at least one update.  This
        single rule covers both behaviours: obedient nodes follow the
        protocol (which says accept useful offers), and rational nodes
        accept exactly when profitable.  A satiated node can never gain
        and therefore always declines — the satiation-compatibility at
        the heart of the attack.
        """
        if self.evicted or self.is_attacker:
            return False
        return gain > 0

    def __repr__(self) -> str:
        return (
            f"GossipNode(node_id={self.node_id}, behavior={self.behavior}, "
            f"group={self.group}, evicted={self.evicted})"
        )
