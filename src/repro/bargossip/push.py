"""The optimistic-push sub-protocol.

"In an optimistic push, the node initiating the push sends a list of
recently released updates it has to offer and a list of updates
expiring relatively soon it needs.  The other node can then receive a
limited number of the recent updates in exchange for older updates or
junk data."

Mechanics implemented here:

* the initiator offers its *recent* updates (created within
  ``push_recent_window`` rounds);
* the responder takes up to ``push_size`` offers it is missing;
* the responder pays with the same number of units: *old* updates the
  initiator asked for where it has them, junk data for the remainder
  (the junk is the "nonproductive work" of Section 4 that stops the
  push from being a pure free ride);
* if the responder needs none of the offers, the push transfers
  nothing — a fully satiated responder gains nothing and (rationally)
  declines, which is again satiation-compatibility emerging from the
  rules.

Whether a node *initiates* a push is a behaviour decision made in
``node.py``: rational nodes push only when they are missing old
updates ("if a node has no missing older updates, he has nothing to
gain by initiating an optimistic push and a rational node will not"),
obedient nodes push whenever they have something to offer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .config import GossipConfig
from .updates import (
    BitsetPopulationStore,
    UpdateStore,
    WordPopulationStore,
    bottom_bits,
    popcount,
    truncate_word_rows,
    word_popcounts,
)

__all__ = [
    "PushPlan",
    "plan_optimistic_push",
    "apply_push",
    "BitsetPushPlan",
    "bitset_plan_push",
    "bitset_apply_push",
    "push_window_masks",
    "batched_push_eligibility",
    "batched_word_push",
    "push_dump_limits",
]


@dataclass(frozen=True)
class PushPlan:
    """The outcome of negotiating one optimistic push.

    Attributes
    ----------
    to_responder:
        Recent updates flowing initiator -> responder (the "push").
    to_initiator:
        Old needed updates flowing responder -> initiator.
    junk_units:
        Junk payloads the responder uploads to keep its payment equal
        to what it received.
    """

    to_responder: Tuple[int, ...]
    to_initiator: Tuple[int, ...]
    junk_units: int

    @property
    def size(self) -> int:
        """Useful updates moved in both directions."""
        return len(self.to_responder) + len(self.to_initiator)

    @property
    def happened(self) -> bool:
        """Whether the push transferred anything at all."""
        return bool(self.to_responder)


def plan_optimistic_push(
    initiator: UpdateStore,
    responder: UpdateStore,
    config: GossipConfig,
    round_now: int,
) -> PushPlan:
    """Negotiate one optimistic push between two correct nodes.

    The responder's payment is capped at what it received, so the
    initiator risks giving ``push_size`` recent updates for junk — the
    optimism that gives the sub-protocol its name, and the altruism
    channel the Figure 2 defense widens by raising ``push_size``.
    """
    recent_cutoff = round_now - config.push_recent_window + 1
    old_cutoff = round_now - config.push_age_threshold + 1
    offers = initiator.have_newer_than(recent_cutoff, config.updates_per_round)
    wanted_by_responder = [u for u in offers if u in responder.missing]
    to_responder = tuple(sorted(wanted_by_responder)[: config.push_size])
    if not to_responder:
        return PushPlan(to_responder=(), to_initiator=(), junk_units=0)
    requests = initiator.missing_older_than(old_cutoff, config.updates_per_round)
    payable = [u for u in requests if u in responder.have]
    to_initiator = tuple(payable[: len(to_responder)])
    junk_units = len(to_responder) - len(to_initiator)
    return PushPlan(
        to_responder=to_responder, to_initiator=to_initiator, junk_units=junk_units
    )


def apply_push(
    initiator: UpdateStore, responder: UpdateStore, plan: PushPlan
) -> Tuple[int, int]:
    """Apply a negotiated push; returns (initiator_gained, responder_gained)."""
    gained_responder = responder.receive_all(plan.to_responder)
    gained_initiator = initiator.receive_all(plan.to_initiator)
    return gained_initiator, gained_responder


class BitsetPushPlan:
    """A negotiated push on the bitset backend, as packed bit masks.

    Planning and applying stay separate (unlike the fused exchange)
    because the responder's accept/decline decision sits between them;
    carrying masks instead of ids avoids any id materialization.
    """

    __slots__ = ("to_responder_mask", "to_initiator_mask", "responder_count", "initiator_count")

    def __init__(self, to_responder_mask: int, to_initiator_mask: int) -> None:
        self.to_responder_mask = to_responder_mask
        self.to_initiator_mask = to_initiator_mask
        self.responder_count = popcount(to_responder_mask)
        self.initiator_count = popcount(to_initiator_mask)

    @property
    def junk_units(self) -> int:
        return self.responder_count - self.initiator_count


_EMPTY_BITSET_PUSH = BitsetPushPlan(0, 0)


def _recent_offer_mask(pool, config: GossipConfig, round_now: int) -> int:
    """Columns offerable in a push (created within the recent window)."""
    u = pool.updates_per_round
    recent_lo = max(0, (round_now - config.push_recent_window + 1) * u - pool.base)
    return pool.full_mask >> recent_lo << recent_lo


def _old_need_mask(pool, config: GossipConfig, round_now: int) -> int:
    """Columns "expiring relatively soon" (before the age cutoff)."""
    u = pool.updates_per_round
    old_hi = max(0, (round_now - config.push_age_threshold + 1) * u - pool.base)
    return (1 << old_hi) - 1


def push_window_masks(pool, config: GossipConfig, round_now: int) -> Tuple[int, int]:
    """This round's ``(recent, old)`` push-window column masks.

    Built from the same two helpers the per-pair planner uses, so the
    batched word sweep can never disagree with it on the windows.
    """
    return (
        _recent_offer_mask(pool, config, round_now),
        _old_need_mask(pool, config, round_now),
    )


def batched_push_eligibility(
    pool: WordPopulationStore,
    rows: "np.ndarray",
    obedient: "np.ndarray",
    config: GossipConfig,
    round_now: int,
) -> "np.ndarray":
    """Which of ``rows`` would initiate an optimistic push, as one sweep.

    The vectorized ``GossipNode.wants_to_push`` over the word store:
    every node pushes when it misses an update old enough to be
    "expiring relatively soon"; an obedient node (per the ``obedient``
    mask, aligned with ``rows``) additionally pushes when it holds a
    recently released offer.  Callers pre-filter attackers and evicted
    nodes, exactly as the per-pair path's early returns do.  Built on
    the same window masks as the per-pair planner, so the two can never
    disagree on the cutoffs.
    """
    recent_mask, old_mask = push_window_masks(pool, config, round_now)
    old_words = pool.mask_words(old_mask)
    wants = (pool.missing_words[rows] & old_words).any(axis=1)
    if obedient.any():
        recent_words = pool.mask_words(recent_mask)
        has_offers = (pool.have_words[rows] & recent_words).any(axis=1)
        wants |= obedient & has_offers
    return wants


def bitset_plan_push(
    pool: BitsetPopulationStore,
    initiator: int,
    responder: int,
    config: GossipConfig,
    round_now: int,
) -> BitsetPushPlan:
    """Negotiate one optimistic push on the bitset backend.

    Selects exactly the ids :func:`plan_optimistic_push` would: the
    responder takes the ``push_size`` *oldest* wanted offers (the sets
    planner sorts the wanted offers ascending before truncating), and
    pays with the oldest payable requests.  The old-needs mask is only
    built once an offer survives — the common empty-offer case stays
    one mask allocation.
    """
    recent_mask = _recent_offer_mask(pool, config, round_now)
    wanted = (
        pool.have_bits[initiator] & pool.missing_bits[responder] & recent_mask
    )
    if not wanted:
        return _EMPTY_BITSET_PUSH
    to_responder = bottom_bits(wanted, config.push_size)
    if not to_responder:
        return _EMPTY_BITSET_PUSH
    old_mask = _old_need_mask(pool, config, round_now)
    payable = pool.missing_bits[initiator] & pool.have_bits[responder] & old_mask
    to_initiator = bottom_bits(payable, popcount(to_responder))
    return BitsetPushPlan(to_responder, to_initiator)


def bitset_apply_push(
    pool: BitsetPopulationStore, initiator: int, responder: int, plan: BitsetPushPlan
) -> None:
    """Apply a negotiated bitset push in place."""
    pool.have_bits[responder] |= plan.to_responder_mask
    pool.missing_bits[responder] &= ~plan.to_responder_mask
    pool.have_bits[initiator] |= plan.to_initiator_mask
    pool.missing_bits[initiator] &= ~plan.to_initiator_mask


def batched_word_push(
    pool: WordPopulationStore,
    initiators: Sequence[int],
    responders: Sequence[int],
    config: GossipConfig,
    round_now: int,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Many optimistic pushes in one word-array sweep.

    ``initiators[i]`` pushes to ``responders[i]``; pairs must be
    node-disjoint (cell structure) and pre-filtered to willing
    initiators and correct, non-evicted responders — the behaviour
    decisions stay with the caller, exactly where the per-pair path
    makes them.  Each pair's plan equals :func:`bitset_plan_push` and
    a responder accepts iff it gains at least one update, so applying
    here (transfers for pairs with a positive responder count) is the
    per-pair plan → accept → apply sequence, batched.

    Returns the per-pair ``(to_responder, to_initiator)`` counts; the
    junk payment is their difference.
    """
    rows_i = np.asarray(initiators, dtype=np.intp)
    rows_r = np.asarray(responders, dtype=np.intp)
    recent_mask, old_mask = push_window_masks(pool, config, round_now)
    recent = pool.mask_words(recent_mask)
    old = pool.mask_words(old_mask)
    have = pool.have_words
    missing = pool.missing_words
    have_i = have[rows_i]
    have_r = have[rows_r]
    miss_i = missing[rows_i]
    miss_r = missing[rows_r]
    wanted = have_i & miss_r & recent
    n_wanted = word_popcounts(wanted)
    responder_counts = np.minimum(n_wanted, config.push_size)
    to_responder = wanted.copy()
    truncate_word_rows(
        to_responder, wanted, responder_counts, n_wanted, prefer_newest=False
    )
    payable = miss_i & have_r & old
    n_payable = word_popcounts(payable)
    initiator_counts = np.minimum(n_payable, responder_counts)
    to_initiator = payable.copy()
    truncate_word_rows(
        to_initiator, payable, initiator_counts, n_payable, prefer_newest=False
    )
    have[rows_r] = have_r | to_responder
    missing[rows_r] = miss_r & ~to_responder
    have[rows_i] = have_i | to_initiator
    missing[rows_i] = miss_i & ~to_initiator
    return responder_counts, initiator_counts


def push_dump_limits(config: GossipConfig, obedient: "np.ndarray") -> "np.ndarray":
    """Per-receiver cap on an attacker dump through the push channel.

    A dump riding the push channel is capped at ``push_size`` like any
    push payload; the Figure 3 ``accept_cap`` defense tightens that
    further for obedient receivers.  Mirrors the per-pair limit
    arithmetic of ``InteractionEngine.attacker_dump``.
    """
    limits = np.full(len(obedient), config.push_size, dtype=np.int64)
    if config.accept_cap is not None:
        limits[obedient] = min(config.push_size, config.accept_cap)
    return limits
