"""Sharded execution of gossip rounds: schedule, slices, merge, workers.

The bitset backend (PR 2) vectorized the round loop *within* one core;
this module partitions the node population of a single round across
``k`` shards so the exchange and push phases can run on separate
worker processes.  The obstacle named on the ROADMAP was the exchange
phase's sequential pair order: with the reference
:class:`~repro.bargossip.partner.PartnerSchedule` a node can serve
several initiators in one round, so interactions chain through shared
state and no partition of the nodes keeps every interaction local.

:class:`ShardedPartnerSchedule` removes the obstacle at the schedule
level, the same way BAR Gossip's verifiable pseudorandom partner
selection makes partner choice strategy-independent: each round draws
one seeded permutation of the population (a pure function of the root
seed — no node can bias its own draws), consecutive positions form
*cells* of four nodes, and both sub-protocols pair nodes within their
cell (exchange pairs ``(0,1)/(2,3)``, push pairs ``(0,2)/(1,3)``).
Every interaction of a round therefore touches exactly one cell, cells
are mutually independent, and any grouping of cells into shards yields
the same trace — results are bit-identical regardless of ``k``.  The
per-round permutation keeps each node's partner distribution uniform
over the other nodes across rounds.

Execution reorganizes state ownership: :func:`extract_shard` cuts a
shard's slice out of the simulator (packed bitset rows or per-node
sets, eviction flags, the attacker-coalition and reporting-authority
slices that shard can touch), :func:`run_shard` replays the two phases
over the slice with the same
:class:`~repro.bargossip.simulator.InteractionEngine` the classic
simulator uses, and :func:`merge_shard` folds the outcome back in a
deterministic shard order.  :class:`ShardPool` runs ``run_shard`` on a
persistent worker-process pool; the in-process path calls the very
same function, so worker count can never change results.
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.behaviors import Behavior
from ..core.errors import ConfigurationError, WorkerCrash
from ..faults import FaultPlan, arm as _arm_faults, fault_point
from .attacker import AttackerCoalition, AttackKind
from .config import GossipConfig
from .defenses import EvictionAuthority, ReportingPolicy
from .node import GossipNode, TargetGroup
from .partner import Purpose, RoundWindowSchedule
from .population import N_COUNTER_COLS, Population
from .updates import BitsetPopulationStore, UpdateStore, WordPopulationStore

__all__ = [
    "CELL_SIZE",
    "cell_exchange_pairs",
    "cell_push_pairs",
    "ShardedPartnerSchedule",
    "ShardStatic",
    "ShardState",
    "ShardOutcome",
    "SharedShardOutcome",
    "extract_shard",
    "run_shard",
    "run_shard_shared",
    "merge_shard",
    "merge_shard_shared",
    "ShardPool",
]

#: Nodes per cell of the round permutation.  Four is the smallest cell
#: granting every node distinct exchange and push partners; shard
#: boundaries always fall on cell boundaries, which is what makes the
#: partner draws independent of the shard count.
CELL_SIZE = 4

Cell = Tuple[int, ...]


def cell_exchange_pairs(cell: Cell) -> List[Tuple[int, int]]:
    """Balanced-exchange pairs within one cell (positions 0-1, 2-3).

    Tail cells shorter than :data:`CELL_SIZE` pair what they can; a
    lone unpaired node sits the phase out (its schedule entry points
    at itself and the round executor skips it).
    """
    return [
        (cell[index], cell[index + 1]) for index in range(0, len(cell) - 1, 2)
    ]


def cell_push_pairs(cell: Cell) -> List[Tuple[int, int]]:
    """Optimistic-push pairs within one cell (positions 0-2, 1-3).

    Full cells cross the exchange pairing so every node sees two
    distinct partners per round.  A 3-node tail pairs positions 0-2
    (1 sits out); a 2-node tail reuses its exchange pair — the one
    degenerate case where both purposes share a partner.
    """
    if len(cell) >= CELL_SIZE:
        return [(cell[0], cell[2]), (cell[1], cell[3])]
    if len(cell) == 3:
        return [(cell[0], cell[2])]
    if len(cell) == 2:
        return [(cell[0], cell[1])]
    return []


class ShardedPartnerSchedule(RoundWindowSchedule):
    """Permutation-pairing partner schedule that partitions into shards.

    Satisfies the :class:`~repro.bargossip.partner.RoundWindowSchedule`
    contract (same sliding window, same ``partner_of`` /
    ``partners_for_round`` semantics) while guaranteeing that each
    round's interaction graph decomposes into independent cells.  A
    node left unpaired for a purpose (the tail of a population not
    divisible by :data:`CELL_SIZE`) maps to itself; the executor skips
    such entries.

    The shard count is *not* part of the schedule: draws depend only
    on the root seed, and :meth:`shard_cells` merely groups the cells,
    so every ``k`` observes the identical schedule.
    """

    def __init__(self, n_nodes: int, rng: np.random.Generator) -> None:
        super().__init__(n_nodes, rng)
        self._cells: Dict[int, Tuple[Cell, ...]] = {}
        self._perms: Dict[int, np.ndarray] = {}

    def _perm_for_round(self, round_now: int) -> np.ndarray:
        """The round's raw permutation draw (window-checked)."""
        if round_now not in self._perms:
            self._materialize_through(round_now)
        return self._perms[round_now]

    def cells_for_round(self, round_now: int) -> Tuple[Cell, ...]:
        """The round's cells (tuples of node ids, permutation order).

        Built lazily from the raw permutation: the batched words path
        consumes :meth:`round_pairs` instead, so the O(n) Python tuple
        materialization only runs for shard slicing and the per-pair
        executors.
        """
        if round_now not in self._cells:
            permutation = self._perm_for_round(round_now).tolist()
            self._cells[round_now] = tuple(
                tuple(permutation[start : start + CELL_SIZE])
                for start in range(0, self._n_nodes, CELL_SIZE)
            )
        return self._cells[round_now]

    def round_pairs(self, round_now: int, purpose: Purpose) -> np.ndarray:
        """The round's interaction pairs for one purpose, as an (m, 2) array.

        Cells are contiguous ``CELL_SIZE`` blocks of the permutation, so
        the per-cell pairings of :func:`cell_exchange_pairs` /
        :func:`cell_push_pairs` are strided slices of the raw draw — no
        Python cell walk.  Pair *order* differs from the flattened cell
        walk (pushes list every cell's first pair before the second),
        which cannot change the trace: islands are node-disjoint, so
        any order within a directed pass applies the same per-island
        sequence.
        """
        perm = self._perm_for_round(round_now)
        n = self._n_nodes
        if purpose is Purpose.EXCHANGE:
            m = n - (n % 2)
            return np.column_stack((perm[0:m:2], perm[1:m:2]))
        m = n - (n % CELL_SIZE)
        parts = [
            np.column_stack((perm[0:m:4], perm[2:m:4])),
            np.column_stack((perm[1:m:4], perm[3:m:4])),
        ]
        tail = n - m
        if tail == 3:
            parts.append(np.asarray([[perm[m], perm[m + 2]]], dtype=perm.dtype))
        elif tail == 2:
            parts.append(np.asarray([[perm[m], perm[m + 1]]], dtype=perm.dtype))
        return np.concatenate(parts)

    def round_order(self, round_now: int) -> Tuple[int, ...]:
        """Canonical initiation order of the round: permutation order.

        Replaces the classic simulator's separate order draw: with
        cell-local interactions, any order that keeps each cell's
        positions in sequence yields the same trace, so the executor
        uses the permutation itself.
        """
        return tuple(
            node for cell in self.cells_for_round(round_now) for node in cell
        )

    def shard_cells(self, round_now: int, n_shards: int) -> List[Tuple[Cell, ...]]:
        """The round's cells grouped into ``n_shards`` contiguous shards.

        Shards may be empty when ``n_shards`` exceeds the cell count;
        callers skip those.  Grouping is the only thing ``n_shards``
        influences — the underlying draws are shard-count independent.
        """
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        cells = self.cells_for_round(round_now)
        count = len(cells)
        return [
            cells[shard * count // n_shards : (shard + 1) * count // n_shards]
            for shard in range(n_shards)
        ]

    def partners_for_round(self, round_now: int, purpose: Purpose):
        """Partner array derived lazily from the round's cells.

        The sharded executor consumes only the cells (each shard
        re-derives its pairings slice-locally), so the O(n)
        full-population arrays are built on first request — the
        ``shards == 1`` execution path and direct schedule queries —
        instead of every round.  Window semantics are those of the
        cells: one round of look-back, older raises.
        """
        key = (round_now, purpose)
        if key not in self._cache:
            cells = self.cells_for_round(round_now)  # window-checked
            pairs_of = (
                cell_exchange_pairs
                if purpose is Purpose.EXCHANGE
                else cell_push_pairs
            )
            partners = np.arange(self._n_nodes)  # unpaired nodes sit out
            for cell in cells:
                for left, right in pairs_of(cell):
                    partners[left] = right
                    partners[right] = left
            self._cache[key] = partners
        return self._cache[key]

    def _draw_round_entries(self, round_now: int) -> None:
        self._perms[round_now] = self._rng.permutation(self._n_nodes)

    def _discard_before(self, cutoff_round: int) -> None:
        super()._discard_before(cutoff_round)
        for cache in (self._cells, self._perms):
            for stale in [r for r in cache if r < cutoff_round]:
                del cache[stale]


# ----------------------------------------------------------------------
# Shard slices: extraction, execution, merge
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardStatic:
    """Per-simulation constants shipped to each worker exactly once.

    ``behaviors`` is indexed by global node id.  A worker derives the
    ATTACKER/correct split from it (attackers are exactly the
    BYZANTINE nodes); the satiated/isolated split — which rotation can
    change mid-run — travels per round in the attack slice instead,
    because the interaction engine only consults it through the
    coalition's target set.

    ``shm_name`` names the simulation's shared-memory word store when
    ``config.memory == "shared"``: pool workers attach to it once, in
    the initializer, and thereafter mutate their shard's rows in
    place.
    """

    config: GossipConfig
    behaviors: Tuple[Behavior, ...]
    shm_name: Optional[str] = None


@dataclass(frozen=True)
class ShardState:
    """One shard's slice of one round: everything its phases may read.

    The population store rows (bitset backend) or per-node sets (sets
    backend) are indexed by *local* position — the flattened cell
    order, which is also the shard's initiation order.
    """

    round_now: int
    cells: Tuple[Cell, ...]
    node_ids: Tuple[int, ...]
    evicted_mask: int
    # Bitset backend: packed rows sliced out of the population store.
    base: int
    have_rows: Optional[Tuple[int, ...]]
    missing_rows: Optional[Tuple[int, ...]]
    # Sets backend: per-node live-update sets.
    have_sets: Optional[Tuple[frozenset, ...]]
    missing_sets: Optional[Tuple[frozenset, ...]]
    # Attacker-coalition slice; populated only when the shard contains
    # a coalition node (interactions elsewhere never consult it).
    attack_kind: AttackKind
    attack_members: Tuple[int, ...]
    attack_targets: Tuple[int, ...]
    attack_pool: Tuple[int, ...]
    # Reporting-defense slice: standing report state of the shard's
    # potential offenders (policy None when the defense is off).
    policy: Optional[ReportingPolicy]
    reports: Tuple[Tuple[int, Tuple[int, ...]], ...]
    already_evicted: Tuple[int, ...]
    # Words backend, memory="heap": packed word rows (numpy uint64).
    have_words: Optional["np.ndarray"] = None
    missing_words: Optional["np.ndarray"] = None
    # Shared-memory execution: the phase this slice drives ("exchange"
    # or "push"); rows stay in the shared block and never travel.
    phase: Optional[str] = None


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard's phases produced, ready for a deterministic merge.

    Counter deltas are *sparse columns* (the worker's shard-local
    :class:`~repro.bargossip.population.Population` starts every node
    at zero): ``counter_rows`` names the local indices whose tallies
    moved, ``counters`` their compact delta rows in
    :data:`~repro.bargossip.node.COUNTER_FIELDS` order, narrowed to
    int16/int32 — so the merge is one fancy-index scatter-add into the
    simulator's counters matrix instead of a per-node tuple walk.
    Store rows/sets are final values.  Node-local fields can never
    conflict across shards — each node belongs to exactly one cell per
    round — and the shared-state deltas (coalition service total,
    reports, evictions) are applied in shard order.
    """

    have_rows: Optional[Tuple[int, ...]]
    missing_rows: Optional[Tuple[int, ...]]
    have_sets: Optional[Tuple[frozenset, ...]]
    missing_sets: Optional[Tuple[frozenset, ...]]
    counter_rows: "np.ndarray"  # (k,) local indices with nonzero deltas
    counters: "np.ndarray"  # (k, 8) narrow-int delta rows
    evicted_mask: int
    updates_served: int
    reports: Tuple[Tuple[int, Tuple[int, ...]], ...]
    newly_evicted: Tuple[int, ...]
    coalition_evicted: Tuple[int, ...]
    have_words: Optional["np.ndarray"] = None
    missing_words: Optional["np.ndarray"] = None


@dataclass(frozen=True)
class SharedShardOutcome:
    """One phase's result on the shared-memory path: no rows, no counters.

    This is the whole point of ``memory="shared"``: the worker mutated
    its shard's word rows *and its counter columns* in place (both
    live in the same shared segment), so what crosses the wire back is
    only the eviction mask and the coalition / authority deltas —
    nothing that scales with the shard's node count.
    """

    evicted_mask: int
    updates_served: int
    reports: Tuple[Tuple[int, Tuple[int, ...]], ...]
    newly_evicted: Tuple[int, ...]
    coalition_evicted: Tuple[int, ...]


def extract_shard(
    simulator,
    cells: Sequence[Cell],
    round_now: int,
    phase: Optional[str] = None,
) -> ShardState:
    """Cut one shard's slice out of a live :class:`GossipSimulator`.

    Pure read: the simulator is not modified.  The slice carries only
    what the shard's interactions can observe — in particular the
    attacker-coalition and authority slices are empty whenever no
    coalition node landed in the shard this round.

    ``phase`` marks a shared-memory slice (one phase per dispatch); no
    rows are copied then, because the worker operates on the shared
    block in place.
    """
    pool = simulator._pool
    attack = simulator.attack
    authority = simulator.authority
    nodes = simulator.nodes
    node_ids: List[int] = [node for cell in cells for node in cell]

    # The simulator maintains the evicted-id and coalition-member sets
    # (see its __init__/merge bookkeeping) precisely so the common case
    # — nobody evicted, no attack — costs no per-node scan here.
    evicted_mask = 0
    if simulator._evicted_ids:
        evicted_ids = simulator._evicted_ids
        for local, node_id in enumerate(node_ids):
            if node_id in evicted_ids:
                evicted_mask |= 1 << local
    if attack.active:
        byzantine = simulator._byzantine
        offenders = [node_id for node_id in node_ids if node_id in byzantine]
    else:
        offenders = []

    have_rows = missing_rows = have_sets = missing_sets = None
    have_words = missing_words = None
    base = 0
    if phase is not None:
        base = pool.base  # rows live in the shared block; only metadata ships
    elif isinstance(pool, WordPopulationStore):
        base = pool.base
        rows = np.asarray(node_ids, dtype=np.intp)
        have_words = pool.have_words[rows]  # fancy index: a private copy
        missing_words = pool.missing_words[rows]
    elif pool is not None:
        base = pool.base
        have_bits, missing_bits = pool.have_bits, pool.missing_bits
        have_rows = tuple([have_bits[node_id] for node_id in node_ids])
        missing_rows = tuple([missing_bits[node_id] for node_id in node_ids])
    else:
        have_sets = tuple(
            frozenset(nodes[node_id].store.have) for node_id in node_ids
        )
        missing_sets = tuple(
            frozenset(nodes[node_id].store.missing) for node_id in node_ids
        )

    if offenders:
        members = tuple(sorted(attack.nodes.intersection(node_ids)))
        targets = tuple(sorted(attack.satiated_targets.intersection(node_ids)))
        coalition_pool = tuple(sorted(attack.pool))
        kind = attack.kind
    else:
        members = targets = coalition_pool = ()
        kind = AttackKind.NONE

    policy = None
    reports: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    already_evicted: Tuple[int, ...] = ()
    if authority is not None and offenders:
        policy = authority.policy
        reports = tuple(
            (offender, tuple(sorted(authority.reports[offender])))
            for offender in offenders
            if offender in authority.reports
        )
        already_evicted = tuple(
            offender for offender in offenders if offender in authority.evicted
        )

    return ShardState(
        round_now=round_now,
        cells=tuple(cells),
        node_ids=tuple(node_ids),
        evicted_mask=evicted_mask,
        base=base,
        have_rows=have_rows,
        missing_rows=missing_rows,
        have_sets=have_sets,
        missing_sets=missing_sets,
        attack_kind=kind,
        attack_members=members,
        attack_targets=targets,
        attack_pool=coalition_pool,
        policy=policy,
        reports=reports,
        already_evicted=already_evicted,
        have_words=have_words,
        missing_words=missing_words,
        phase=phase,
    )


def _partner_maps(
    cells: Sequence[Cell],
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Local (exchange, push) partner maps derived from the cells."""
    exchange: Dict[int, int] = {}
    push: Dict[int, int] = {}
    for cell in cells:
        for node in cell:
            exchange[node] = node
            push[node] = node
        for left, right in cell_exchange_pairs(cell):
            exchange[left] = right
            exchange[right] = left
        for left, right in cell_push_pairs(cell):
            push[left] = right
            push[right] = left
    return exchange, push


def _rebuild_attack(state: ShardState) -> AttackerCoalition:
    """The shard's view of the coalition, counters zeroed for deltas."""
    attack = AttackerCoalition(
        state.attack_kind,
        nodes=state.attack_members,
        satiated_targets=state.attack_targets,
    )
    attack.pool = set(state.attack_pool)
    return attack


def _rebuild_authority(state: ShardState) -> Optional[EvictionAuthority]:
    """The shard's slice of the reporting defense (None when off)."""
    if state.policy is None:
        return None
    return EvictionAuthority(
        policy=state.policy,
        reports={
            offender: set(reporters) for offender, reporters in state.reports
        },
        evicted=set(state.already_evicted),
    )


def _make_shard_node(
    static: ShardStatic,
    state: ShardState,
    local: int,
    node_id: int,
    store,
    population: Population,
    row: int,
) -> GossipNode:
    """One shard-local node view over the given store and population row."""
    behavior = static.behaviors[node_id]
    return GossipNode(
        node_id,
        behavior,
        # The engine only distinguishes attacker from correct; the
        # satiated/isolated split lives in the coalition's target set,
        # so ISOLATED is a safe stand-in here.
        TargetGroup.ATTACKER
        if behavior is Behavior.BYZANTINE
        else TargetGroup.ISOLATED,
        store=store,
        evicted=bool(state.evicted_mask >> local & 1),
        population=population,
        row=row,
    )


def _evicted_mask_of(population: Population, rows=None) -> int:
    """Shard-local eviction bitmask from a population's flag column.

    ``rows`` maps local position -> population row (the shared path's
    global ids); None means rows equal locals (a shard-local
    population).  Evictions are rare, so the mask assembly only walks
    the flagged positions.
    """
    flags = population.evicted
    if rows is not None:
        flags = flags[np.asarray(rows, dtype=np.intp)]
    mask = 0
    for local in np.flatnonzero(flags).tolist():
        mask |= 1 << local
    return mask


def _authority_deltas(
    authority: Optional[EvictionAuthority], state: ShardState
) -> Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], Tuple[int, ...]]:
    """(final report state, newly evicted) of one shard execution."""
    if authority is None:
        return (), ()
    reports = tuple(
        (offender, tuple(sorted(reporters)))
        for offender, reporters in sorted(authority.reports.items())
    )
    newly_evicted = tuple(
        sorted(authority.evicted - set(state.already_evicted))
    )
    return reports, newly_evicted


def run_shard(static: ShardStatic, state: ShardState) -> ShardOutcome:
    """Run one shard's exchange and push phases over its slice.

    A pure function of its arguments — the in-process executor and the
    worker pool call exactly this, which is what makes worker count
    irrelevant to results.  The slice is replayed through the same
    :class:`~repro.bargossip.simulator.InteractionEngine` as the
    classic round loop, over a shard-local population store; a words
    slice additionally runs the phases through the engine's batched
    word-array dispatch (bit-identical by construction).
    """
    from .simulator import InteractionEngine  # deferred: avoids module cycle

    config = static.config
    node_ids = state.node_ids

    slice_pool = None
    if state.have_rows is not None:
        slice_pool = BitsetPopulationStore(
            len(node_ids), config.updates_per_round, config.update_lifetime
        )
        slice_pool.base = state.base
        slice_pool.have_bits = list(state.have_rows)
        slice_pool.missing_bits = list(state.missing_rows)
    elif state.have_words is not None:
        slice_pool = WordPopulationStore(
            len(node_ids), config.updates_per_round, config.update_lifetime
        )
        # Under the ring scheme the live window's bit offset is a pure
        # function of ``base`` (``base % 64``), so adopting the
        # coordinator's base and copying raw word rows reproduces its
        # exact bit layout — no re-packing.  The same property is what
        # would let a *remote* host adopt a compacted-store slice from
        # a wire message (see ROADMAP: multi-host execution).
        slice_pool.base = state.base
        slice_pool.have_words[:] = state.have_words
        slice_pool.missing_words[:] = state.missing_words

    # Shard-local columnar state: counters start at zero, so after the
    # phases the matrix *is* the shard's delta, ready for the sparse
    # extraction below.
    population = Population(len(node_ids))
    shard_nodes: List[GossipNode] = []
    for local, node_id in enumerate(node_ids):
        if slice_pool is not None:
            store = slice_pool.view(local)
        else:
            store = UpdateStore()
            store.have = set(state.have_sets[local])
            store.missing = set(state.missing_sets[local])
        shard_nodes.append(
            _make_shard_node(
                static, state, local, node_id, store, population, local
            )
        )

    attack = _rebuild_attack(state)
    initial_members = set(state.attack_members)
    authority = _rebuild_authority(state)

    engine = InteractionEngine(
        shard_nodes,
        config,
        attack,
        authority,
        pool=slice_pool,
        population=population,
    )
    if isinstance(slice_pool, WordPopulationStore):
        engine.run_exchanges_batched(
            state.round_now,
            [pair for cell in state.cells for pair in cell_exchange_pairs(cell)],
        )
        engine.run_pushes_batched(
            state.round_now,
            [pair for cell in state.cells for pair in cell_push_pairs(cell)],
        )
    else:
        exchange_partners, push_partners = _partner_maps(state.cells)
        engine.run_exchanges(state.round_now, node_ids, exchange_partners)
        engine.run_pushes(state.round_now, node_ids, push_partners)

    reports, newly_evicted = _authority_deltas(authority, state)
    is_words = isinstance(slice_pool, WordPopulationStore)
    is_bitset = slice_pool is not None and not is_words
    counter_rows, counter_deltas = population.sparse_counter_deltas()

    return ShardOutcome(
        have_rows=tuple(slice_pool.have_bits) if is_bitset else None,
        missing_rows=tuple(slice_pool.missing_bits) if is_bitset else None,
        have_sets=(
            tuple(frozenset(node.store.have) for node in shard_nodes)
            if slice_pool is None
            else None
        ),
        missing_sets=(
            tuple(frozenset(node.store.missing) for node in shard_nodes)
            if slice_pool is None
            else None
        ),
        counter_rows=counter_rows,
        counters=counter_deltas,
        evicted_mask=_evicted_mask_of(population),
        updates_served=attack.updates_served,
        reports=reports,
        newly_evicted=newly_evicted,
        coalition_evicted=tuple(sorted(initial_members - attack.nodes)),
        have_words=slice_pool.have_words if is_words else None,
        missing_words=slice_pool.missing_words if is_words else None,
    )


def run_shard_shared(
    static: ShardStatic, state: ShardState, store: WordPopulationStore
) -> SharedShardOutcome:
    """Run one phase of one shard *in place* on the shared word store.

    The worker's (or, in-process, the coordinator's) ``store`` maps
    the same shared-memory block the simulator owns — word rows *and*
    counter columns — so the phase mutates the shard's rows directly
    and bumps the live global tallies through a
    :class:`~repro.bargossip.population.Population` view of the
    store's counter region.  ``state`` carries cells and the
    coalition/authority slices in, the outcome carries evictions and
    reports back; neither rows nor counters ever cross the process
    boundary.  Safe because cells are node-disjoint across shards and
    the coordinator barriers each phase.
    """
    from .simulator import InteractionEngine  # deferred: avoids module cycle

    config = static.config
    node_ids = state.node_ids
    store.base = state.base

    # Counters view the shared segment (in-place global tallies);
    # behaviour codes and eviction flags stay worker-local — the
    # flagged evictions travel back through the outcome, exactly as on
    # the heap path, so the authority keeps its dedup authority.
    population = Population(
        config.n_nodes,
        counters=store.extra.reshape(config.n_nodes, N_COUNTER_COLS),
    )
    shard_nodes = [
        _make_shard_node(
            static, state, local, node_id, store.view(node_id),
            population, node_id,
        )
        for local, node_id in enumerate(node_ids)
    ]

    attack = _rebuild_attack(state)
    initial_members = set(state.attack_members)
    authority = _rebuild_authority(state)

    engine = InteractionEngine(
        shard_nodes,
        config,
        attack,
        authority,
        pool=store,
        rows=list(node_ids),
        population=population,
    )
    if state.phase == "exchange":
        engine.run_exchanges_batched(
            state.round_now,
            [pair for cell in state.cells for pair in cell_exchange_pairs(cell)],
        )
    else:
        engine.run_pushes_batched(
            state.round_now,
            [pair for cell in state.cells for pair in cell_push_pairs(cell)],
        )

    reports, newly_evicted = _authority_deltas(authority, state)
    return SharedShardOutcome(
        evicted_mask=_evicted_mask_of(population, rows=node_ids),
        updates_served=attack.updates_served,
        reports=reports,
        newly_evicted=newly_evicted,
        coalition_evicted=tuple(sorted(initial_members - attack.nodes)),
    )


def merge_shard(simulator, state: ShardState, outcome: ShardOutcome) -> None:
    """Fold one shard's outcome back into the simulator.

    Node-local state is written in place (each node belongs to exactly
    one shard per round), the sparse counter deltas land as one
    scatter-add on the simulator's counters matrix, and the shared
    coalition/authority deltas are applied in the caller's shard order
    — which is fixed — so the merged state is identical whatever ran
    the shards, and in whatever real-time order they finished.
    """
    pool = simulator._pool
    nodes = simulator.nodes
    if outcome.have_words is not None:
        rows = np.asarray(state.node_ids, dtype=np.intp)
        pool.have_words[rows] = outcome.have_words
        pool.missing_words[rows] = outcome.missing_words
    elif outcome.have_rows is not None:
        for local, node_id in enumerate(state.node_ids):
            pool.have_bits[node_id] = outcome.have_rows[local]
            pool.missing_bits[node_id] = outcome.missing_rows[local]
    elif outcome.have_sets is not None:
        for local, node_id in enumerate(state.node_ids):
            store = nodes[node_id].store
            store.have = set(outcome.have_sets[local])
            store.missing = set(outcome.missing_sets[local])
    if len(outcome.counter_rows):
        ids = np.asarray(state.node_ids, dtype=np.intp)[outcome.counter_rows]
        simulator.population.add_counter_deltas(ids, outcome.counters)
    _apply_eviction_mask(simulator, state, outcome.evicted_mask)
    _merge_shared_state_deltas(simulator, outcome)


def merge_shard_shared(
    simulator, state: ShardState, outcome: SharedShardOutcome
) -> None:
    """Fold one shared-memory phase outcome back into the simulator.

    Rows and counters already live where they belong (the worker
    mutated the shared segment in place), so the merge reduces to the
    eviction flags and the shared coalition/authority state — exactly
    what the wire carried.
    """
    _apply_eviction_mask(simulator, state, outcome.evicted_mask)
    _merge_shared_state_deltas(simulator, outcome)


def _apply_eviction_mask(simulator, state: ShardState, mask: int) -> None:
    """Raise the flagged locals' eviction flags (idempotent)."""
    if not mask:
        return
    for local, node_id in enumerate(state.node_ids):
        if mask >> local & 1:
            node = simulator.nodes[node_id]
            if not node.evicted:
                node.evicted = True
                simulator._evicted_ids.add(node_id)


def _merge_shared_state_deltas(simulator, outcome) -> None:
    """Coalition and authority deltas common to both merge paths."""
    simulator.attack.updates_served += outcome.updates_served
    for node_id in outcome.coalition_evicted:
        simulator.attack.evict(node_id)
    if simulator.authority is not None and outcome.reports:
        for offender, reporters in outcome.reports:
            simulator.authority.reports[offender] = set(reporters)
        simulator.authority.evicted.update(outcome.newly_evicted)


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------

#: Per-worker simulation constants, installed by the pool initializer so
#: the static payload crosses the process boundary once, not per round.
_WORKER_STATIC: Optional[ShardStatic] = None

#: The worker's attachment to the simulation's shared-memory word
#: store (None on the heap paths).  Attached once per pool lifetime —
#: this is the "zero-copy" half of the shared execution.
_WORKER_STORE: Optional[WordPopulationStore] = None


def _init_shard_worker(
    static: ShardStatic, fault_plan: Optional[FaultPlan] = None
) -> None:
    # Pool-initializer pattern: worker-global state is the only way to
    # hand a shared-memory attachment to every task in the worker.
    # Runs again in every *respawned* worker, which is what re-attaches
    # the shared segment after a crash.  The fault plan (chaos tests
    # only) arms before the attach so ``shm:attach`` faults can fire.
    global _WORKER_STATIC, _WORKER_STORE  # noqa: PLW0603
    if fault_plan is not None:
        _arm_faults(fault_plan)
    _WORKER_STATIC = static
    if _WORKER_STORE is not None:
        _WORKER_STORE.close()
        _WORKER_STORE = None
    if static.shm_name is not None:
        config = static.config
        _WORKER_STORE = WordPopulationStore(
            config.n_nodes,
            config.updates_per_round,
            config.update_lifetime,
            memory="shared",
            shm_name=static.shm_name,
            # Mirror the creator's layout: the counter columns sit in
            # the same segment, after the word rows.
            extra_int64=config.n_nodes * N_COUNTER_COLS,
        )


def _run_shard_in_worker(state: ShardState) -> ShardOutcome:
    fault_point("worker:shard")
    return run_shard(_WORKER_STATIC, state)


def _run_shared_in_worker(state: ShardState) -> SharedShardOutcome:
    fault_point("worker:shard-shared")
    return run_shard_shared(_WORKER_STATIC, state, _WORKER_STORE)


class ShardPool:
    """A persistent, supervised process pool executing shard slices.

    Parameters
    ----------
    workers:
        Worker process count; values below 2 make :meth:`run` execute
        in-process (identical results — ``run_shard`` is the single
        execution path either way).
    mp_context:
        Optional :mod:`multiprocessing` start-method name; None uses
        the platform default.
    retries:
        Re-attempts per heap-mode shard task after a worker crash or
        missed deadline.  ``run_shard`` is a pure function of its
        slice, so a retried shard reproduces the lost outcome
        bit-exactly.  Shared-memory phases never retry at this level
        (the phase mutates the segment in place — recovery belongs to
        the coordinator, which restores the round snapshot).
    phase_timeout:
        Per-shard dispatch deadline in seconds (None = no deadline); a
        worker that misses it is terminated and treated as crashed.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` armed in every
        worker (chaos tests only).

    The pool is bound to one simulation's :class:`ShardStatic` at a
    time (shipped through the worker initializer); running a different
    simulation through the same pool transparently restarts the
    workers.  Worker loss is survived: the supervising pool respawns
    the member (re-running the initializer, which re-attaches shared
    memory) and re-runs only the lost shard — except in shared mode,
    where the first loss tears the whole pool down and raises
    :class:`~repro.core.errors.WorkerCrash` so no surviving worker can
    mutate the segment while the coordinator restores it.
    """

    def __init__(
        self,
        workers: int,
        mp_context: Optional[str] = None,
        retries: int = 2,
        phase_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if phase_timeout is not None and phase_timeout <= 0:
            raise ConfigurationError(
                f"phase_timeout must be > 0 or None, got {phase_timeout}"
            )
        self.workers = workers
        self.mp_context = mp_context
        self.retries = retries
        self.phase_timeout = phase_timeout
        self.fault_plan = fault_plan
        self._pool = None  # Optional[supervise.SupervisedPool]
        self._static: Optional[ShardStatic] = None

    def run(
        self, static: ShardStatic, states: Sequence[ShardState]
    ) -> List[ShardOutcome]:
        """Execute the round's shard states; results in submission order.

        Heap-mode shards are pure functions of their slice, so a crashed
        or wedged worker costs one transparent re-run of the lost shard;
        only a shard failing past its retry budget raises
        :class:`WorkerCrash` (after the pool is torn down).
        """
        if self.workers < 2 or len(states) < 2:
            return [run_shard(static, state) for state in states]
        from ..harness.supervise import SupervisionPolicy  # deferred: cycle

        policy = SupervisionPolicy(
            retries=self.retries, task_timeout=self.phase_timeout
        )
        outcomes, failures = self._ensure(static).run(
            _run_shard_in_worker,
            states,
            policy=policy,
            labels=[f"shard {i} (round {s.round_now})" for i, s in enumerate(states)],
        )
        if failures:
            self.terminate()
            first = failures[0]
            raise WorkerCrash(first.label, first.fate, first.error)
        return outcomes

    def run_shared(
        self,
        static: ShardStatic,
        states: Sequence[ShardState],
        local_store: WordPopulationStore,
    ) -> List[SharedShardOutcome]:
        """Execute one phase's shard states on the shared word store.

        Workers mutate the shared block through their own attachment;
        the in-process fallback uses the coordinator's ``local_store``.
        Returning is the phase barrier: every shard's phase has been
        applied before the coordinator proceeds.

        A shared-memory phase is *not* idempotent (rows mutate in
        place), so worker loss cannot be retried here: the first failed
        attempt terminates every worker — no survivor may touch the
        segment — and raises :class:`WorkerCrash` for the coordinator,
        which restores its round snapshot and re-runs the round on a
        fresh pool.
        """
        if self.workers < 2 or len(states) < 2:
            return [
                run_shard_shared(static, state, local_store)
                for state in states
            ]
        from ..harness.supervise import SupervisionPolicy  # deferred: cycle

        policy = SupervisionPolicy(
            retries=0, task_timeout=self.phase_timeout
        )
        try:
            outcomes, _failures = self._ensure(static).run(
                _run_shared_in_worker,
                states,
                policy=policy,
                labels=[
                    f"shared shard {i} ({s.phase}, round {s.round_now})"
                    for i, s in enumerate(states)
                ],
                abort_on_failure=True,
            )
        except WorkerCrash:
            # The supervising pool already terminated every worker; drop
            # the dead pool so the coordinator's re-run builds a fresh
            # one through the initializer (re-attaching the segment).
            self._pool = None
            self._static = None
            _LIVE_POOLS.discard(self)
            raise
        return outcomes

    def _ensure(self, static: ShardStatic):
        if self._pool is None or self._static is not static:
            self.close()
            from ..harness.supervise import SupervisedPool  # deferred: cycle

            self._pool = SupervisedPool(
                self.workers,
                initializer=_init_shard_worker,
                initargs=(static, self.fault_plan),
                mp_context=self.mp_context,
            )
            self._pool.start()
            self._static = static
            _LIVE_POOLS.add(self)
        return self._pool

    def close(self, join_deadline: float = 5.0) -> None:
        """Shut the workers down (idempotent; a later run reopens them).

        Waits up to ``join_deadline`` seconds for a graceful exit, then
        terminates stragglers.
        """
        if self._pool is not None:
            self._pool.close(join_deadline=join_deadline)
            self._pool = None
            self._static = None
        _LIVE_POOLS.discard(self)

    def terminate(self) -> None:
        """Kill the workers immediately (failure path; idempotent).

        Unlike :meth:`close` this does not wait for in-flight tasks —
        it is what a failing round calls so no worker outlives the
        coordinator's exception.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
            self._static = None
        _LIVE_POOLS.discard(self)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "idle"
        return f"ShardPool(workers={self.workers}, {state})"


#: Pools with live workers, swept at interpreter exit so an abandoned
#: pool (coordinator exception, forgotten close) cannot leak children.
_LIVE_POOLS: "weakref.WeakSet[ShardPool]" = weakref.WeakSet()


@atexit.register
def _terminate_live_pools() -> None:  # pragma: no cover - exit hook
    for pool in list(_LIVE_POOLS):
        try:
            pool.terminate()
        except Exception:
            pass
