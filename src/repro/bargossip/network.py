"""The network scenario model: latency, loss and churn.

:class:`NetworkModel` describes everything between a send and its
delivery — per-link latency (fixed / uniform / exponential), message
loss, and node churn as Poisson join/leave rates — plus the timeout
the initiator uses to *detect* a departed partner (departures are
observed as silence, never assumed).  The ideal model (zero latency,
zero loss, zero churn) is the synchronous-rounds world: under it the
event schedule reproduces the classic schedule bit-exact (pinned by
the schedule-parity suite).

The model draws from a dedicated ``"network"`` RNG stream (churn from
``"churn"``), so enabling any of it never perturbs the protocol's own
streams — which is exactly why the parity pin can hold.

:class:`NetworkStats` tallies what the network did to the protocol's
messages, and :class:`DeliveryTimeTracker` measures the new
virtual-time headline metric: how long a fresh update takes to reach a
threshold fraction (90% by default) of the live correct population.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.errors import ConfigurationError

__all__ = ["NetworkModel", "NetworkStats", "DeliveryTimeTracker"]

#: Latency distributions a link may draw from.
LATENCY_KINDS = ("fixed", "uniform", "exponential")


@dataclass(frozen=True)
class NetworkModel:
    """One asynchronous-network scenario (immutable, JSON round-trippable).

    All times are in virtual-time units; one synchronous round spans
    ``round_duration`` of them, so ``latency_mean=0.3`` means a typical
    message spends a third of a round in flight.
    """

    #: Latency distribution: ``"fixed"`` (every message takes
    #: ``latency_mean``), ``"uniform"`` (uniform on ``latency_mean``
    #: +/- ``latency_jitter``, clipped at 0) or ``"exponential"``
    #: (mean ``latency_mean``).
    latency_kind: str = "fixed"
    #: Mean one-way message latency, in round durations.
    latency_mean: float = 0.0
    #: Half-width of the uniform latency distribution; ignored by the
    #: other kinds.
    latency_jitter: float = 0.0
    #: Probability an individual message is silently dropped.
    loss_rate: float = 0.0
    #: Poisson rate at which each live correct node leaves the system,
    #: per node per time unit (0 disables departures).
    churn_leave_rate: float = 0.0
    #: Poisson rate at which each departed node rejoins, per node per
    #: time unit (0 disables rejoins).  A rejoining node bootstraps by
    #: re-seeding its live-update state from a random live correct node.
    churn_join_rate: float = 0.0
    #: How long an initiator waits for a reply before concluding the
    #: partner departed.  Departure is *detected* (the timeout fires
    #: while the partner is still gone), never assumed.
    liveness_timeout: float = 1.0
    #: Virtual-time span of one protocol round.
    round_duration: float = 1.0

    @classmethod
    def ideal(cls) -> "NetworkModel":
        """The synchronous-rounds world: zero latency, loss and churn."""
        return cls()

    @property
    def is_ideal(self) -> bool:
        """True when the model cannot perturb the classic schedule."""
        return (
            self.latency_mean == 0.0
            and self.latency_jitter == 0.0
            and self.loss_rate == 0.0
            and self.churn_leave_rate == 0.0
            and self.churn_join_rate == 0.0
        )

    def replace(self, **changes: Any) -> "NetworkModel":
        """A copy of this model with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def sample_latency(self, rng) -> float:
        """Draw one message's latency (no RNG draw for fixed latency)."""
        if self.latency_kind == "fixed":
            return self.latency_mean
        if self.latency_kind == "uniform":
            low = max(0.0, self.latency_mean - self.latency_jitter)
            high = self.latency_mean + self.latency_jitter
            return float(rng.uniform(low, high))
        # exponential; zero mean degenerates to instant delivery
        if self.latency_mean == 0.0:
            return 0.0
        return float(rng.exponential(self.latency_mean))

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON representation (canonical cache/spec form)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "NetworkModel":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown NetworkModel keys: {unknown} (known: {sorted(known)})"
            )
        return cls(**payload)

    def __post_init__(self) -> None:
        if self.latency_kind not in LATENCY_KINDS:
            raise ConfigurationError(
                f"latency_kind must be one of {LATENCY_KINDS}, "
                f"got {self.latency_kind!r}"
            )
        if self.latency_mean < 0.0:
            raise ConfigurationError(
                f"latency_mean must be >= 0, got {self.latency_mean}"
            )
        if self.latency_jitter < 0.0:
            raise ConfigurationError(
                f"latency_jitter must be >= 0, got {self.latency_jitter}"
            )
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1], got {self.loss_rate}"
            )
        if self.churn_leave_rate < 0.0 or self.churn_join_rate < 0.0:
            raise ConfigurationError(
                "churn rates must be >= 0, got leave="
                f"{self.churn_leave_rate} join={self.churn_join_rate}"
            )
        if self.liveness_timeout <= 0.0:
            raise ConfigurationError(
                f"liveness_timeout must be positive, got {self.liveness_timeout}"
            )
        if self.round_duration <= 0.0:
            raise ConfigurationError(
                f"round_duration must be positive, got {self.round_duration}"
            )


@dataclass
class NetworkStats:
    """What the network did to the protocol's messages (one run)."""

    #: Messages initiators handed to the network.
    messages_sent: int = 0
    #: Messages the loss model dropped in flight.
    messages_lost: int = 0
    #: Deliveries that found the partner departed (the initiator's
    #: liveness timer starts here).
    messages_to_departed: int = 0
    #: Deliveries whose *initiator* departed while the message was in
    #: flight, aborting the interaction.
    aborted_by_churn: int = 0
    #: Liveness timeouts that fired on a still-departed partner.
    departures_detected: int = 0
    #: Churn events applied.
    leaves: int = 0
    joins: int = 0
    #: Broadcast seeds that targeted a departed node (never applied).
    seeds_to_departed: int = 0
    #: Updates restored to rejoining nodes by bootstrap re-seeding.
    bootstrap_updates: int = 0
    #: Messages still in flight when the run ended.
    in_flight_at_end: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class DeliveryTimeTracker:
    """Time-to-threshold delivery in virtual time.

    Tracks each measured update from its release until the fraction of
    live correct nodes holding it first reaches ``threshold`` (sampled
    at round boundaries by the event loop).  The summary reports the
    mean release-to-threshold delay over the updates that made it, plus
    how many expired without ever reaching the threshold — the
    "deliveries lost to churn/loss" side of the metric.
    """

    threshold: float = 0.9
    #: update id -> release time, for updates still being tracked.
    pending: Dict[int, float] = field(default_factory=dict)
    _delays: List[float] = field(default_factory=list)
    _expired_unreached: int = 0

    def release(self, updates, time: float) -> None:
        for update in updates:
            self.pending[int(update)] = float(time)

    def mark_reached(self, update: int, time: float) -> None:
        released = self.pending.pop(update, None)
        if released is not None:
            self._delays.append(float(time) - released)

    def expire_unreached(self, updates) -> None:
        for update in updates:
            if self.pending.pop(int(update), None) is not None:
                self._expired_unreached += 1

    def summary(self) -> Dict[str, Optional[float]]:
        reached = len(self._delays)
        expired = self._expired_unreached
        finished = reached + expired
        return {
            "threshold": self.threshold,
            "reached": reached,
            "expired_unreached": expired,
            "reached_fraction": (reached / finished) if finished else None,
            "mean_time_to_threshold": (
                sum(self._delays) / reached if reached else None
            ),
        }
