"""The virtual-time event engine behind ``schedule="event"``.

The paper's experiments run in synchronous rounds; the asynchronous
scenario layer replays the same protocol against virtual time.  The
engine is deliberately tiny: a priority queue of ``(time, seq, event)``
triples (the shape of SNIPPETS.md's cobra-walk simulator, snippet 3)
plus the event vocabulary of one gossip round.

Determinism is the load-bearing property.  Events at equal timestamps
pop in insertion order — the monotonically increasing ``seq`` breaks
ties, and event payloads are never compared — so the whole event trace
is a pure function of the root seed.  This is what makes the parity
pin possible: with zero latency every send and its delivery share one
timestamp, and insertion order reproduces the classic schedule's
initiator order bit-exact.

Interaction events come in send/deliver pairs: a ``*Send`` is the
initiator handing the message to the network (where loss and latency
apply), the matching ``*Deliver`` is the network handing it to the
partner (where the actual :class:`~repro.bargossip.simulator.
InteractionEngine` interaction runs).  Churn events carry no victim —
the victim is drawn when the event fires, so the draw sees the
population as it is then, not as it was when the event was scheduled.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..core.errors import SimulationError

__all__ = [
    "EventQueue",
    "ExchangeSend",
    "ExchangeDeliver",
    "PushSend",
    "PushDeliver",
    "PartnerTimeout",
    "NodeLeave",
    "NodeJoin",
]


@dataclass(frozen=True)
class ExchangeSend:
    """An initiator hands its balanced-exchange request to the network."""

    initiator: int
    partner: int


@dataclass(frozen=True)
class ExchangeDeliver:
    """The network delivers an exchange request to the partner."""

    initiator: int
    partner: int


@dataclass(frozen=True)
class PushSend:
    """An initiator hands its optimistic-push offer to the network."""

    initiator: int
    partner: int


@dataclass(frozen=True)
class PushDeliver:
    """The network delivers a push offer to the partner."""

    initiator: int
    partner: int


@dataclass(frozen=True)
class PartnerTimeout:
    """The initiator's liveness timer for an unanswered partner fires.

    Scheduled when a delivery finds the partner departed: the initiator
    cannot *know* that — it only observes silence — so departure is
    detected when the timeout fires and the partner is still gone.  If
    the partner rejoined in the meantime the probe counts as answered.
    """

    initiator: int
    partner: int


@dataclass(frozen=True)
class NodeLeave:
    """Churn: one correct node (drawn at fire time) leaves the system."""


@dataclass(frozen=True)
class NodeJoin:
    """Churn: one departed node (drawn at fire time) rejoins."""


class EventQueue:
    """A deterministic virtual-time priority queue.

    A thin heapq wrapper over ``(time, seq, event)`` triples.  ``seq``
    increases monotonically across pushes, so events at equal
    timestamps pop in insertion order and event payloads never need to
    be comparable.  Times must be finite and non-decreasing relative
    to nothing — the queue itself accepts any finite time; scheduling
    into the past is the caller's bug and is rejected at pop time by
    the simulator's round loop, not here.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = itertools.count()

    def push(self, time: float, event: Any) -> None:
        """Schedule ``event`` at virtual ``time``."""
        time = float(time)
        if not math.isfinite(time) or time < 0.0:
            raise SimulationError(
                f"event time must be finite and >= 0, got {time!r}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), event))

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, event)`` pair."""
        if not self._heap:
            raise SimulationError("pop from an empty EventQueue")
        time, _, event = heapq.heappop(self._heap)
        return time, event

    def peek_time(self) -> Optional[float]:
        """The earliest scheduled time, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
