"""The lotus-eater attack on a reputation system.

The attacker controls Sybil identities that file fake positive ratings
for the targets every round, keeping their reputation pinned above
their maintenance targets — satiated, and therefore silent.

Because ratings *mint* reputation (nothing is conserved), an
unnormalized reputation system is strictly easier to attack than a
scrip system: one Sybil can satiate the whole population.  The
``rater_cap`` normalization restores a scrip-like budget: the attack
rate is bounded by (number of Sybils) x (per-rater cap), so satiating
a large fraction requires a proportionally large Sybil army.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..core.errors import ConfigurationError
from .system import ReputationSystem

__all__ = ["RatingInflationAttack", "sybils_needed"]


class RatingInflationAttack:
    """Keep chosen agents' reputation pinned at/above their targets.

    Parameters
    ----------
    targets:
        Agent ids to satiate.
    n_sybils:
        Distinct rater identities the attacker controls.  Only
        relevant when the system enforces a per-rater cap.
    pin_to:
        Reputation level maintained on each target (defaults to the
        system's target, queried at install time).
    """

    def __init__(
        self,
        targets: Iterable[int],
        n_sybils: int = 1,
        pin_to: Optional[float] = None,
    ) -> None:
        self.targets: Set[int] = set(targets)
        if not self.targets:
            raise ConfigurationError("must target at least one agent")
        if n_sybils < 1:
            raise ConfigurationError(f"n_sybils must be >= 1, got {n_sybils}")
        self.n_sybils = n_sybils
        self.pin_to = pin_to
        self.reputation_minted = 0.0

    def install(self, system: ReputationSystem) -> None:
        """Attach to a system; runs before every round."""
        bad = [t for t in self.targets if not 0 <= t < len(system.agents)]
        if bad:
            raise ConfigurationError(f"unknown target agents: {sorted(bad)}")
        if self.pin_to is None:
            self.pin_to = system.config.target
        system.pre_round_hooks.append(self._on_round)

    def _on_round(self, round_now: int, system: ReputationSystem) -> None:
        # Account for this round's decay so targets stay pinned after it.
        decay = system.config.decay
        sybil_index = 0
        for target in sorted(self.targets):
            agent = system.agents[target]
            needed = self.pin_to / decay - agent.reputation
            while needed > 1e-12 and sybil_index < self.n_sybils * len(self.targets):
                rater = f"sybil:{sybil_index % self.n_sybils}"
                credited = system.rate(rater, target, needed)
                self.reputation_minted += credited
                system.injected_reputation += credited
                needed -= credited
                if credited <= 0:
                    sybil_index += 1  # this sybil's cap is exhausted
                    if sybil_index >= self.n_sybils:
                        return  # the whole army is spent this round
                else:
                    break


def sybils_needed(
    n_targets: int, target_level: float, decay: float, rater_cap: float
) -> int:
    """Sybil identities needed to *hold* ``n_targets`` satiated.

    Steady state: each target loses ``target_level * (1 - decay)``
    reputation per round to decay, each Sybil can mint at most
    ``rater_cap`` per round, so the army must cover the total decay.
    This is the reputation analogue of the scrip system's
    :func:`~repro.scrip.attacks.satiation_holdings` bound — the
    normalization turns "one Sybil satiates everyone" into a cost that
    scales with the satiated fraction.
    """
    if n_targets < 0:
        raise ConfigurationError(f"n_targets must be >= 0, got {n_targets}")
    if not 0.0 < decay <= 1.0:
        raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
    if rater_cap <= 0:
        raise ConfigurationError(f"rater_cap must be positive, got {rater_cap}")
    if target_level < 0:
        raise ConfigurationError(
            f"target_level must be >= 0, got {target_level}"
        )
    per_round_decay = n_targets * target_level * (1.0 - decay) / decay
    import math

    return max(0, math.ceil(per_round_decay / rater_cap))
