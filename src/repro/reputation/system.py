"""A reputation-based service economy (paper Section 1).

"In indirect reciprocity systems, such as reputation systems [Guha et
al.; EigenTrust] and scrip systems, peers need to perform service for
others often enough to maintain a good reputation or supply of money.
If an attacker can ensure that a peer maintains a good reputation ...
despite any requests the peer makes, then that peer will no longer
provide service for others."

Model
-----
Each agent carries a reputation score that decays every round, earns
reputation by serving (the requester files a positive rating), and is
*served* only while its reputation clears an admission bar.  Rational
agents maintain their reputation just above a personal target and stop
serving once there — the satiation state.  Unlike scrip, reputation is
**not conserved**: ratings mint it freely, which is exactly what makes
the lotus-eater attack cheaper here than in a scrip system (Section
4's fixed-supply defense has no analogue) unless rating influence is
normalized per rater, EigenTrust-style.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.engine import RoundSimulator
from ..core.errors import ConfigurationError
from ..core.rng import RngStreams

__all__ = ["ReputationConfig", "ReputationAgent", "ReputationSystem"]


@dataclass(frozen=True)
class ReputationConfig:
    """Parameters of one reputation economy."""

    #: Number of agents.
    n_agents: int = 100
    #: Multiplicative reputation decay per round (forces maintenance).
    #: Tuned so the decay drain roughly matches honest rating inflow
    #: at a healthy service rate.
    decay: float = 0.997
    #: Reputation a requester needs to be served at all.
    admission_bar: float = 0.5
    #: Rational agents serve while their reputation is below this.
    target: float = 3.0
    #: Reputation granted by one (honest) positive rating.
    rating_value: float = 1.0
    #: Probability an agent can serve a given request.
    ability: float = 0.3
    #: Utility of receiving service / cost of providing it.
    gamma: float = 1.0
    alpha: float = 0.1
    #: Reputation every agent starts with.
    initial_reputation: float = 2.0
    #: EigenTrust-style defense: when set, the total reputation any
    #: single rater (honest or Sybil) can mint per round is capped.
    #: None disables normalization.
    rater_cap: Optional[float] = None

    @classmethod
    def paper(cls) -> "ReputationConfig":
        """A representative healthy economy."""
        return cls()

    @classmethod
    def small(cls) -> "ReputationConfig":
        """Reduced size for fast tests.

        Small populations need a faster decay and smaller ratings:
        service throughput in equilibrium is the decay drain divided
        by the rating value, and with few agents each rating is a
        large reputation jump.
        """
        return cls(n_agents=20, ability=0.5, decay=0.99, rating_value=0.5)

    def replace(self, **changes) -> "ReputationConfig":
        """A copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def __post_init__(self) -> None:
        if self.n_agents < 2:
            raise ConfigurationError(f"n_agents must be >= 2, got {self.n_agents}")
        if not 0.0 < self.decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {self.decay}")
        if self.admission_bar < 0:
            raise ConfigurationError(
                f"admission_bar must be >= 0, got {self.admission_bar}"
            )
        if self.target <= self.admission_bar:
            raise ConfigurationError(
                "target must exceed admission_bar, got "
                f"{self.target} <= {self.admission_bar}"
            )
        if self.rating_value <= 0:
            raise ConfigurationError(
                f"rating_value must be positive, got {self.rating_value}"
            )
        if not 0.0 < self.ability <= 1.0:
            raise ConfigurationError(f"ability must be in (0, 1], got {self.ability}")
        if self.gamma <= self.alpha:
            raise ConfigurationError(
                f"gamma must exceed alpha: {self.gamma} <= {self.alpha}"
            )
        if self.initial_reputation < 0:
            raise ConfigurationError(
                f"initial_reputation must be >= 0, got {self.initial_reputation}"
            )
        if self.rater_cap is not None and self.rater_cap <= 0:
            raise ConfigurationError(
                f"rater_cap must be positive or None, got {self.rater_cap}"
            )


@dataclass
class ReputationAgent:
    """One agent: a reputation score and the threshold strategy."""

    agent_id: int
    reputation: float
    target: float
    utility: float = 0.0
    services_provided: int = 0
    services_received: int = 0

    @property
    def is_satiated(self) -> bool:
        """Reputation demands met: the agent stops serving."""
        return self.reputation >= self.target

    def volunteers(self) -> bool:
        """Serve only while reputation maintenance requires it."""
        return not self.is_satiated


class ReputationSystem(RoundSimulator):
    """The round economy: decay, request, serve, rate."""

    def __init__(self, config: ReputationConfig, seed: int = 0) -> None:
        self.config = config
        streams = RngStreams(seed)
        self._request_rng = streams.get("requests")
        self._ability_rng = streams.get("ability")
        self._choice_rng = streams.get("choice")
        self.agents: List[ReputationAgent] = [
            ReputationAgent(
                agent_id=agent_id,
                reputation=config.initial_reputation,
                target=config.target,
            )
            for agent_id in range(config.n_agents)
        ]
        self._round = 0
        self.requests = 0
        self.served = 0
        self.denied_admission = 0
        #: Reputation minted by each rater this round (for the cap).
        self._minted_this_round: Dict[object, float] = {}
        #: Total reputation injected by attack hooks (for reports).
        self.injected_reputation = 0.0
        self.pre_round_hooks: List[Callable[[int, "ReputationSystem"], None]] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        return self._round

    def service_rate(self) -> float:
        """Fraction of requests served so far."""
        if self.requests == 0:
            return 1.0
        return self.served / self.requests

    def satiated_fraction(self) -> float:
        """Fraction of agents currently refusing to serve."""
        return sum(1 for agent in self.agents if agent.is_satiated) / len(self.agents)

    def total_reputation(self) -> float:
        """Sum of all reputation (not conserved, unlike scrip)."""
        return sum(agent.reputation for agent in self.agents)

    # ------------------------------------------------------------------
    # Rating channel (used by honest requesters and by attackers)
    # ------------------------------------------------------------------

    def rate(self, rater: object, target_agent: int, value: float) -> float:
        """Mint ``value`` reputation onto an agent, subject to the cap.

        Returns the amount actually credited.  With ``rater_cap`` set,
        each distinct rater can mint at most that much per round —
        the EigenTrust-style normalization that forces an attacker to
        control many Sybils to satiate many targets quickly.
        """
        if value < 0:
            raise ConfigurationError(f"rating value must be >= 0, got {value}")
        cap = self.config.rater_cap
        if cap is not None:
            already = self._minted_this_round.get(rater, 0.0)
            value = min(value, max(0.0, cap - already))
        if value <= 0:
            return 0.0
        self._minted_this_round[rater] = (
            self._minted_this_round.get(rater, 0.0) + value
        )
        self.agents[target_agent].reputation += value
        return value

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def step(self) -> None:
        round_now = self._round
        self._minted_this_round = {}
        for hook in self.pre_round_hooks:
            hook(round_now, self)
        for agent in self.agents:
            agent.reputation *= self.config.decay
        requester = self.agents[int(self._request_rng.integers(len(self.agents)))]
        self.requests += 1
        if requester.reputation < self.config.admission_bar:
            self.denied_admission += 1
        else:
            volunteers = [
                agent
                for agent in self.agents
                if agent.agent_id != requester.agent_id
                and self._ability_rng.random() < self.config.ability
                and agent.volunteers()
            ]
            if volunteers:
                server = volunteers[int(self._choice_rng.integers(len(volunteers)))]
                self.served += 1
                requester.utility += self.config.gamma
                server.utility -= self.config.alpha
                requester.services_received += 1
                server.services_provided += 1
                self.rate(
                    f"agent:{requester.agent_id}",
                    server.agent_id,
                    self.config.rating_value,
                )
        self._round += 1
