"""Reputation-system substrate and rating-inflation attacks.

Agents maintain reputation just above a maintenance target and stop
serving once there; the attacker pins targets' reputation with fake
ratings.  Without per-rater normalization the attack is nearly free
(reputation is minted, not conserved); EigenTrust-style caps restore a
scrip-like cost that scales with the satiated fraction.
"""

from .attacks import RatingInflationAttack, sybils_needed
from .system import ReputationAgent, ReputationConfig, ReputationSystem

__all__ = [
    "ReputationConfig",
    "ReputationAgent",
    "ReputationSystem",
    "RatingInflationAttack",
    "sybils_needed",
]
