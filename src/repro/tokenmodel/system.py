"""The abstract token-collecting system ``(G, T, sat, f, c, a)``.

Section 3 of the paper abstracts every satiable system into six
parameters:

* ``G = (V, E)`` — the underlying communication graph (assumed
  connected);
* ``T`` — a finite set of tokens;
* ``sat`` — the satiation function (the paper's simple model uses
  ``sat(i, t, T') = true iff T' = T``);
* ``f`` — an initial allocation of tokens to nodes;
* ``c`` — a bound on the number of nodes each node contacts per round;
* ``a`` — the probability a node responds to requests even when
  satiated ("the amount of altruism in the system").

This module holds the immutable system description; the dynamics live
in :mod:`repro.tokenmodel.simulator` and the attacker strategies in
:mod:`repro.tokenmodel.attacks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional

import networkx as nx
import numpy as np

from ..core.errors import ConfigurationError
from ..core.satiation import CompleteSetSatiation, SatiationFunction

__all__ = ["TokenSystem", "uniform_allocation", "rare_token_allocation"]

Token = Hashable


@dataclass(frozen=True)
class TokenSystem:
    """An immutable ``(G, T, sat, f, c, a)`` tuple.

    Attributes mirror the paper's notation exactly; see the module
    docstring.  Construction validates the paper's standing
    assumptions (connected graph, ``c >= 1``, ``a`` a probability, the
    allocation referencing only known nodes and tokens).
    """

    graph: nx.Graph
    tokens: FrozenSet[Token]
    satiation: SatiationFunction
    allocation: Mapping[int, FrozenSet[Token]]
    contacts_per_round: int = 1
    altruism: float = 0.0

    def __post_init__(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise ConfigurationError("graph must have at least one node")
        if not nx.is_connected(self.graph):
            raise ConfigurationError("the paper's model assumes a connected graph")
        if not self.tokens:
            raise ConfigurationError("token set T must be non-empty")
        if self.contacts_per_round < 1:
            raise ConfigurationError(
                f"contacts_per_round (c) must be >= 1, got {self.contacts_per_round}"
            )
        if not 0.0 <= self.altruism <= 1.0:
            raise ConfigurationError(
                f"altruism (a) must be a probability, got {self.altruism}"
            )
        nodes = set(self.graph.nodes)
        for node, held in self.allocation.items():
            if node not in nodes:
                raise ConfigurationError(f"allocation references unknown node {node}")
            unknown = set(held) - set(self.tokens)
            if unknown:
                raise ConfigurationError(
                    f"allocation gives node {node} unknown tokens {sorted(map(str, unknown))}"
                )
        missing_everywhere = set(self.tokens) - {
            token for held in self.allocation.values() for token in held
        }
        if missing_everywhere:
            raise ConfigurationError(
                "some tokens are allocated to nobody and can never spread: "
                f"{sorted(map(str, missing_everywhere))}"
            )

    @property
    def n_nodes(self) -> int:
        """Population size |V|."""
        return self.graph.number_of_nodes()

    def initial_tokens_of(self, node: int) -> FrozenSet[Token]:
        """The tokens ``f`` assigns to ``node`` (empty set if none)."""
        return self.allocation.get(node, frozenset())

    def holders_of(self, token: Token) -> Dict[int, bool]:
        """Initial holders of ``token``: ``{node: True}`` for each holder."""
        return {
            node: True
            for node, held in self.allocation.items()
            if token in held
        }

    @classmethod
    def complete_collection(
        cls,
        graph: nx.Graph,
        n_tokens: int,
        allocation: Mapping[int, FrozenSet[int]],
        contacts_per_round: int = 1,
        altruism: float = 0.0,
    ) -> "TokenSystem":
        """The paper's simple model: integer tokens, complete-set satiation."""
        tokens = frozenset(range(n_tokens))
        return cls(
            graph=graph,
            tokens=tokens,
            satiation=CompleteSetSatiation(tokens),
            allocation=allocation,
            contacts_per_round=contacts_per_round,
            altruism=altruism,
        )


def uniform_allocation(
    graph: nx.Graph,
    n_tokens: int,
    copies_per_token: int,
    rng: np.random.Generator,
) -> Dict[int, FrozenSet[int]]:
    """Seed each token at ``copies_per_token`` uniformly random nodes.

    The paper's benign case: "if many nodes start with each token and
    those nodes are well spread, this attack is likely to be
    ineffective".
    """
    nodes = sorted(graph.nodes)
    if copies_per_token < 1 or copies_per_token > len(nodes):
        raise ConfigurationError(
            f"copies_per_token must be in [1, {len(nodes)}], got {copies_per_token}"
        )
    held: Dict[int, set] = {node: set() for node in nodes}
    for token in range(n_tokens):
        chosen = rng.choice(len(nodes), size=copies_per_token, replace=False)
        for index in chosen:
            held[nodes[int(index)]].add(token)
    return {node: frozenset(tokens) for node, tokens in held.items() if tokens}


def rare_token_allocation(
    graph: nx.Graph,
    n_tokens: int,
    copies_per_common_token: int,
    rare_token: int,
    rare_holder: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, FrozenSet[int]]:
    """An allocation with one rare token held by a single node.

    The paper's extreme case: "where some token is initially at a
    single node, an attacker can deny the entire system access to that
    token for the cost of satiating one node".
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if not 0 <= rare_token < n_tokens:
        raise ConfigurationError(
            f"rare_token must be in [0, {n_tokens}), got {rare_token}"
        )
    nodes = sorted(graph.nodes)
    if rare_holder is None:
        rare_holder = nodes[0]
    if rare_holder not in set(nodes):
        raise ConfigurationError(f"rare_holder {rare_holder} is not a graph node")
    held: Dict[int, set] = {node: set() for node in nodes}
    for token in range(n_tokens):
        if token == rare_token:
            held[rare_holder].add(token)
            continue
        chosen = rng.choice(len(nodes), size=min(copies_per_common_token, len(nodes)), replace=False)
        for index in chosen:
            held[nodes[int(index)]].add(token)
    return {node: frozenset(tokens) for node, tokens in held.items() if tokens}
