"""Attacker strategies for the abstract token model.

The paper's attacker is deliberately over-powered: "at the start of
every round, an attacker chooses a subset of the nodes and gives each
node in the set all the tokens.  Clearly this overestimates the power
of the attacker in most real systems ... however, this simple model
suffices to help us see where problems may lie."

Three strategies exercise the three structural attacks of Section 3:

* :class:`CutSatiationAttack` — satiate a vertex cut (e.g. a grid
  column) so tokens cannot cross it; nodes on a token-poor side never
  complete.
* :class:`RareTokenAttack` — satiate exactly the holders of a rare
  token, denying the whole system that token for the cost of a few
  nodes.
* :class:`MassSatiationAttack` — satiate a large random fraction of
  the system to reduce everyone else's trade opportunities (the
  gossip-style attack, driven through parameter ``c``).

:class:`NullAttack` is the no-op baseline.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..core.errors import ConfigurationError
from .system import TokenSystem

__all__ = [
    "TokenAttack",
    "NullAttack",
    "CutSatiationAttack",
    "RareTokenAttack",
    "MassSatiationAttack",
]


class TokenAttack(abc.ABC):
    """Strategy interface: which nodes get the full token set each round."""

    @abc.abstractmethod
    def targets(self, round_now: int, system: TokenSystem) -> Set[int]:
        """Nodes to satiate at the start of ``round_now``."""

    def describe(self) -> str:
        """Human-readable strategy name for reports."""
        return type(self).__name__


class NullAttack(TokenAttack):
    """No attack: the undisturbed epidemic baseline."""

    def targets(self, round_now: int, system: TokenSystem) -> Set[int]:
        return set()

    def describe(self) -> str:
        return "no attack"


class CutSatiationAttack(TokenAttack):
    """Satiate a fixed vertex cut every round.

    "At any time the attacker can partition the graph with relatively
    little cost by removing any set of nodes that constitutes a cut.
    If some side of the cut is missing a token, nodes on that side of
    the cut will never be able to collect all the tokens."
    """

    def __init__(self, cut_nodes: Iterable[int]) -> None:
        self.cut_nodes = set(cut_nodes)
        if not self.cut_nodes:
            raise ConfigurationError("cut must contain at least one node")

    def targets(self, round_now: int, system: TokenSystem) -> Set[int]:
        return set(self.cut_nodes)

    def describe(self) -> str:
        return f"cut satiation ({len(self.cut_nodes)} nodes)"


class RareTokenAttack(TokenAttack):
    """Satiate the initial holders of chosen tokens.

    The attacker needs to know the initial allocation ``f`` — which the
    paper notes "tends to be relatively easy to determine" in file
    sharing and grid systems where rare resources are advertised.
    """

    def __init__(self, tokens: Iterable[object]) -> None:
        self.tokens: FrozenSet[object] = frozenset(tokens)
        if not self.tokens:
            raise ConfigurationError("must target at least one token")
        self._cached: Optional[Set[int]] = None

    def targets(self, round_now: int, system: TokenSystem) -> Set[int]:
        if self._cached is None:
            unknown = self.tokens - set(system.tokens)
            if unknown:
                raise ConfigurationError(
                    f"targeted tokens not in the system: {sorted(map(str, unknown))}"
                )
            self._cached = {
                node
                for node, held in system.allocation.items()
                if self.tokens & set(held)
            }
        return set(self._cached)

    def describe(self) -> str:
        return f"rare-token satiation ({len(self.tokens)} tokens)"


class MassSatiationAttack(TokenAttack):
    """Satiate a random fraction of the population.

    With ``rotate=True`` a fresh subset is drawn every round,
    modelling the paper's remark that "by changing who is satiated over
    time, the attacker could even make the service intermittently
    unusable for all nodes".
    """

    def __init__(
        self,
        fraction: float,
        rng: np.random.Generator,
        rotate: bool = False,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.rotate = rotate
        self._rng = rng
        self._fixed: Optional[Set[int]] = None

    def _draw(self, system: TokenSystem) -> Set[int]:
        nodes: List[int] = sorted(system.graph.nodes)
        count = int(round(self.fraction * len(nodes)))
        if count == 0:
            return set()
        chosen = self._rng.choice(len(nodes), size=count, replace=False)
        return {nodes[int(index)] for index in chosen}

    def targets(self, round_now: int, system: TokenSystem) -> Set[int]:
        if self.rotate:
            return self._draw(system)
        if self._fixed is None:
            self._fixed = self._draw(system)
        return set(self._fixed)

    def describe(self) -> str:
        mode = "rotating" if self.rotate else "fixed"
        return f"mass satiation ({self.fraction:.0%}, {mode})"
