"""Round dynamics of the abstract token model.

Each round (paper Section 3):

1. the attacker satiates its chosen subset ("gives each node in the
   set all the tokens");
2. every node ``i`` that is *not* satiated selects up to ``c``
   communication partners among its neighbours; for each contact,
   "i gets a copy of the tokens that each partner has, while each
   partner gets a copy of the tokens i has";
3. a *satiated* contacted node responds only with probability ``a``
   (the altruism parameter); a declined contact transfers nothing in
   either direction.

"Once i has a copy of all the tokens (i.e., once i is satiated), he
stops communicating" — satiated nodes initiate no contacts.

The simulator tracks, per node, the round at which it first became
satiated *through the protocol* (attacker-satiated nodes are recorded
separately: they got service, but the system did not serve them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

import numpy as np

from ..core.engine import RoundSimulator
from ..core.errors import SimulationError
from ..core.rng import RngStreams
from .attacks import NullAttack, TokenAttack
from .system import TokenSystem

__all__ = ["TokenSimulator", "TokenRunSummary", "run_token_experiment"]


class TokenSimulator(RoundSimulator):
    """Simulate one ``(G, T, sat, f, c, a)`` system under one attack."""

    def __init__(
        self,
        system: TokenSystem,
        attack: Optional[TokenAttack] = None,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.attack = attack if attack is not None else NullAttack()
        streams = RngStreams(seed)
        self._contact_rng = streams.get("contacts")
        self._altruism_rng = streams.get("altruism")
        self._round = 0
        self.holdings: Dict[int, Set[object]] = {
            node: set(system.initial_tokens_of(node)) for node in system.graph.nodes
        }
        #: Nodes the attacker has force-satiated at least once.
        self.attacker_satiated: Set[int] = set()
        #: First round at which each node was satiated (by any means).
        self.satiated_at: Dict[int, int] = {}
        self._neighbors: Dict[int, List[int]] = {
            node: sorted(system.graph.neighbors(node)) for node in system.graph.nodes
        }
        self._satiated_cache: Dict[int, bool] = {}
        for node in system.graph.nodes:
            self._refresh_satiation(node)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        return self._round

    def is_satiated(self, node: int) -> bool:
        """Whether ``node`` is currently satiated."""
        return self._satiated_cache[node]

    def tokens_of(self, node: int) -> FrozenSet[object]:
        """The tokens ``node`` currently holds."""
        return frozenset(self.holdings[node])

    def coverage(self, node: int) -> float:
        """Fraction of the token universe ``node`` holds."""
        return len(self.holdings[node]) / len(self.system.tokens)

    def satiated_fraction(self) -> float:
        """Fraction of nodes currently satiated."""
        total = self.system.n_nodes
        return sum(1 for node in self.holdings if self.is_satiated(node)) / total

    def organically_satiated(self) -> Set[int]:
        """Nodes satiated without ever being force-fed by the attacker."""
        return {
            node for node in self.satiated_at if node not in self.attacker_satiated
        }

    def starving(self) -> Set[int]:
        """Nodes not yet satiated (the attack's victims, if any)."""
        return {node for node in self.holdings if not self.is_satiated(node)}

    def all_satiated(self) -> bool:
        """Whether every node in the system is satiated."""
        return all(self._satiated_cache.values())

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def _refresh_satiation(self, node: int) -> None:
        satiated = self.system.satiation.is_satiated(
            node, self._round, frozenset(self.holdings[node])
        )
        self._satiated_cache[node] = satiated
        if satiated and node not in self.satiated_at:
            self.satiated_at[node] = self._round

    def _give_all_tokens(self, node: int) -> None:
        self.holdings[node] = set(self.system.tokens)
        self.attacker_satiated.add(node)
        self._refresh_satiation(node)
        if not self._satiated_cache[node]:
            raise SimulationError(
                f"node {node} holds all tokens but is not satiated; "
                "the satiation function is not monotone in the token set"
            )

    def step(self) -> None:
        round_now = self._round
        # Phase 1: the attacker force-feeds its chosen subset.
        for target in sorted(self.attack.targets(round_now, self.system)):
            if target not in self.holdings:
                raise SimulationError(f"attack targeted unknown node {target}")
            self._give_all_tokens(target)
        # Phase 2: unsatiated nodes initiate up to c contacts each.
        #
        # Contacts resolve sequentially in node order with immediate
        # state visibility, matching the simultaneous-copy spirit of
        # the paper closely enough while keeping the dynamics simple
        # (the paper itself says "for simplicity, assume all of these
        # events happen simultaneously").
        for node in sorted(self.holdings):
            if self.is_satiated(node):
                continue  # satiated nodes stop communicating
            neighbors = self._neighbors[node]
            if not neighbors:
                continue
            count = min(self.system.contacts_per_round, len(neighbors))
            picks = self._contact_rng.choice(len(neighbors), size=count, replace=False)
            for pick in picks:
                self._contact(node, neighbors[int(pick)])
        self._round += 1

    def _contact(self, initiator: int, partner: int) -> None:
        """One bidirectional token copy, gated by satiated altruism."""
        if self.is_satiated(partner):
            if self._altruism_rng.random() >= self.system.altruism:
                return  # the satiated partner ignores the request
        before_initiator = len(self.holdings[initiator])
        before_partner = len(self.holdings[partner])
        merged = self.holdings[initiator] | self.holdings[partner]
        self.holdings[initiator] = set(merged)
        self.holdings[partner] = set(merged)
        if len(merged) != before_initiator:
            self._refresh_satiation(initiator)
        if len(merged) != before_partner:
            self._refresh_satiation(partner)


@dataclass(frozen=True)
class TokenRunSummary:
    """Summary of one token-model experiment."""

    rounds_run: int
    organically_satiated: int
    attacker_satiated: int
    starving: int
    n_nodes: int
    mean_coverage_of_starving: float
    completion_round: Optional[int]

    @property
    def starving_fraction(self) -> float:
        """Fraction of the population left unsatiated."""
        return self.starving / self.n_nodes


def run_token_experiment(
    system: TokenSystem,
    attack: Optional[TokenAttack] = None,
    max_rounds: int = 200,
    seed: int = 0,
) -> TokenRunSummary:
    """Run until everyone is satiated or ``max_rounds`` elapse; summarize.

    ``completion_round`` is the round after which every node was
    satiated, or None if some node was still starving at the horizon.
    """
    simulator = TokenSimulator(system, attack=attack, seed=seed)
    completion: Optional[int] = None
    for _ in range(max_rounds):
        simulator.step()
        if simulator.all_satiated():
            completion = simulator.round
            break
    starving = simulator.starving()
    coverages = [simulator.coverage(node) for node in sorted(starving)]
    mean_coverage = sum(coverages) / len(coverages) if coverages else 1.0
    return TokenRunSummary(
        rounds_run=simulator.round,
        organically_satiated=len(simulator.organically_satiated()),
        attacker_satiated=len(simulator.attacker_satiated),
        starving=len(starving),
        n_nodes=system.n_nodes,
        mean_coverage_of_starving=mean_coverage,
        completion_round=completion,
    )
