"""The abstract token-collecting model of paper Section 3.

A system is a tuple ``(G, T, sat, f, c, a)``; the attacker satiates a
chosen subset of nodes each round; satiated nodes stop communicating
(modulo the altruism probability ``a``).  Includes the cut, rare-token
and mass-satiation attacks and the structural analysis that finds the
cheap targets.
"""

from .analysis import (
    attack_cost_report,
    cheapest_vertex_cut,
    cut_denies_tokens,
    rarest_tokens,
    token_rarity,
)
from .attacks import (
    CutSatiationAttack,
    MassSatiationAttack,
    NullAttack,
    RareTokenAttack,
    TokenAttack,
)
from .simulator import TokenRunSummary, TokenSimulator, run_token_experiment
from .system import TokenSystem, rare_token_allocation, uniform_allocation

__all__ = [
    "TokenSystem",
    "uniform_allocation",
    "rare_token_allocation",
    "TokenSimulator",
    "TokenRunSummary",
    "run_token_experiment",
    "TokenAttack",
    "NullAttack",
    "CutSatiationAttack",
    "RareTokenAttack",
    "MassSatiationAttack",
    "token_rarity",
    "rarest_tokens",
    "cheapest_vertex_cut",
    "cut_denies_tokens",
    "attack_cost_report",
]
