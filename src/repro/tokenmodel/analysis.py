"""Structural analysis helpers for the token model (paper Section 3).

The paper's attacker picks targets using knowledge of ``G`` and ``f``:
cheap vertex cuts and rare tokens.  These helpers compute both — they
are the attacker's planning toolkit and the defender's audit toolkit
("we thus assume that G and f have been chosen to prevent this" is a
property one can check).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping, Set, Tuple

import networkx as nx

from ..core.errors import AnalysisError
from .system import TokenSystem

__all__ = [
    "token_rarity",
    "rarest_tokens",
    "cheapest_vertex_cut",
    "cut_denies_tokens",
    "attack_cost_report",
]

Token = Hashable


def token_rarity(system: TokenSystem) -> Dict[Token, int]:
    """Initial copy count of every token (rarity = few copies)."""
    counts: Dict[Token, int] = {token: 0 for token in system.tokens}
    for held in system.allocation.values():
        for token in held:
            counts[token] += 1
    return counts


def rarest_tokens(system: TokenSystem, limit: int = 1) -> List[Token]:
    """The ``limit`` tokens with the fewest initial copies.

    Ties break on the token's repr for determinism.
    """
    if limit < 1:
        raise AnalysisError(f"limit must be >= 1, got {limit}")
    counts = token_rarity(system)
    ordered = sorted(counts.items(), key=lambda item: (item[1], repr(item[0])))
    return [token for token, _ in ordered[:limit]]


def cheapest_vertex_cut(graph: nx.Graph, source: int, target: int) -> Set[int]:
    """A minimum vertex cut separating ``source`` from ``target``.

    The attacker's "relatively little cost" partition: satiating these
    nodes stops all token flow between the two sides.
    """
    if source not in graph or target not in graph:
        raise AnalysisError("source and target must be graph nodes")
    if source == target:
        raise AnalysisError("source and target must differ")
    if graph.has_edge(source, target):
        raise AnalysisError(
            "no vertex cut separates adjacent nodes; pick non-adjacent endpoints"
        )
    return set(nx.minimum_node_cut(graph, source, target))


def cut_denies_tokens(
    system: TokenSystem, cut_nodes: Set[int]
) -> Dict[int, FrozenSet[Token]]:
    """Which tokens each post-cut component can never obtain.

    Removing (satiating) ``cut_nodes`` splits the graph; a component is
    starved of every token whose initial copies all live outside it
    (on other components or on the cut itself).  Returns
    ``{component_index: denied tokens}`` for components with at least
    one denied token; an empty dict means the cut is harmless.
    """
    remaining = system.graph.copy()
    remaining.remove_nodes_from(cut_nodes)
    denied: Dict[int, FrozenSet[Token]] = {}
    components = sorted(nx.connected_components(remaining), key=lambda c: sorted(c)[0])
    for index, component in enumerate(components):
        inside: Set[Token] = set()
        for node in component:
            inside |= set(system.initial_tokens_of(node))
        missing = frozenset(set(system.tokens) - inside)
        if missing:
            denied[index] = missing
    return denied


def attack_cost_report(system: TokenSystem) -> Dict[str, object]:
    """Audit a system description for cheap lotus-eater opportunities.

    Returns a dictionary with:

    * ``rarest_token`` / ``rarest_copies`` — the cheapest rare-token
      target and its cost (number of holders to satiate);
    * ``min_degree`` — the cheapest single-node isolation cut;
    * ``tokens_at_single_node`` — tokens deniable by satiating one node.

    A defender wants ``rarest_copies`` large and no single-node tokens
    ("if many nodes start with each token and those nodes are well
    spread, this attack is likely to be ineffective").
    """
    counts = token_rarity(system)
    rarest = rarest_tokens(system, limit=1)[0]
    single = sorted(
        repr(token) for token, count in counts.items() if count == 1
    )
    degrees = dict(system.graph.degree())
    return {
        "rarest_token": rarest,
        "rarest_copies": counts[rarest],
        "min_degree": min(degrees.values()),
        "tokens_at_single_node": single,
    }
