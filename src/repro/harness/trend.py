"""Bench trend tracking: diff and history of ``BENCH_summary.json``.

CI uploads a ``BENCH_summary.json`` per run (see ``lotus-eater
bench``).  This module compares the current run against the previous
run's artifact and flags performance regressions — wall-clock blow-ups
or parallel/backend speedup collapses beyond a tolerated relative
slack — plus any drift in the delivery metrics themselves (those
should be bit-stable for a fixed seed, so *any* change is worth a
look, though only performance regressions fail the check: metric
drift is expected whenever the simulator legitimately changes).

Timing comparisons between two CI runs are inherently noisy (different
runner hardware, neighbors, thermal state), which is why the default
tolerance is a generous 20% and why the CI job is expected to
*annotate* rather than hard-fail when no baseline exists.

``lotus-eater bench-trend`` extends the pairwise diff with a rolling
history: :func:`update_bench_history` keeps the last N artifacts in a
directory, and :func:`compare_bench_history` flags only *sustained*
drift — a metric that moved in the bad direction across the last
``min_sustained`` consecutive runs and lost more than the tolerance
over that stretch.  Single noisy runs, which the pairwise diff can
misflag, wash out.
"""

from __future__ import annotations

import glob
import json
import os
import re
import shutil
from typing import Any, Dict, List, Optional

from ..core.errors import AnalysisError

__all__ = [
    "load_bench_summary",
    "compare_bench_summaries",
    "render_bench_diff",
    "update_bench_history",
    "compare_bench_history",
    "render_bench_history",
]

#: (summary path, human label, direction) of each tracked performance
#: figure of merit.  Direction "lower" means a higher current value is
#: a regression (wall-clock); "higher" means a lower current value is
#: a regression (speedups).
_TRACKED: List = [
    (("totals", "wall_clock_serial_s"), "total serial wall-clock", "lower"),
    (("totals", "wall_clock_parallel_s"), "total parallel wall-clock", "lower"),
    (("totals", "speedup_vs_serial"), "parallel speedup", "higher"),
    (("backend_bench", "sets_seconds"), "set-backend wall-clock", "lower"),
    (("backend_bench", "bitset_seconds"), "bitset-backend wall-clock", "lower"),
    (("backend_bench", "speedup"), "bitset speedup", "higher"),
    # The shard_bench section is newer than the artifacts CI already
    # holds: summaries missing it must diff cleanly ("no baseline,
    # skipped"), which _lookup's None-on-missing handling guarantees.
    (("shard_bench", "serial_seconds"), "sharded serial wall-clock", "lower"),
    (("shard_bench", "parallel_seconds"), "sharded parallel wall-clock", "lower"),
    (("shard_bench", "speedup"), "shard speedup", "higher"),
    # memory_bench landed after shard_bench; older artifacts diff as
    # "no baseline, skipped" exactly like the comment above describes.
    (("memory_bench", "serial_words_seconds"), "word-backend serial wall-clock", "lower"),
    (("memory_bench", "inprocess_words_seconds"), "word-backend in-process wall-clock", "lower"),
    (("memory_bench", "pooled_words_shared_seconds"), "shared-memory pooled wall-clock", "lower"),
    (("memory_bench", "serial_words_vs_bitset_speedup"), "word-backend speedup vs bitset", "higher"),
    # counters_bench landed after memory_bench (columnar population
    # refactor); older artifacts diff as "no baseline, skipped".
    (("counters_bench", "words_round_seconds"), "word-backend serial per-round", "lower"),
    (("counters_bench", "words_vs_bitset_round_speedup"), "per-round words speedup vs bitset", "higher"),
    (("counters_bench", "dispatch", "words_shared", "outcome_bytes"), "shared shard outcome bytes/round", "lower"),
    # event_bench landed after counters_bench (Scenario API / event
    # engine); older artifacts diff as "no baseline, skipped".
    (("event_bench", "ideal_seconds"), "event-engine ideal-network wall-clock", "lower"),
    (("event_bench", "latency_loss_churn_seconds"), "event-engine churny-network wall-clock", "lower"),
    (("event_bench", "event_overhead_vs_rounds"), "event-engine overhead vs rounds", "lower"),
    # fault_bench landed after event_bench (supervised execution
    # layer); older artifacts diff as "no baseline, skipped".
    (("fault_bench", "supervised_seconds"), "supervised sharded wall-clock", "lower"),
    (("fault_bench", "supervised_overhead_ratio"), "supervision overhead ratio", "lower"),
    (("fault_bench", "recovery_seconds"), "worker-kill recovery wall-clock", "lower"),
    # scale_bench landed after fault_bench (million-node rounds);
    # older artifacts diff as "no baseline, skipped".  The 10^6 point
    # only exists in full-profile artifacts — fast-profile runs skip
    # those three rows the same way.
    (("scale_bench", "points", "100000", "round_ms"), "scale 100k ms/round", "lower"),
    (("scale_bench", "points", "100000", "bytes_per_node"), "scale 100k bytes/node", "lower"),
    (("scale_bench", "points", "100000", "peak_rss_bytes"), "scale 100k peak RSS", "lower"),
    (("scale_bench", "points", "1000000", "round_ms"), "scale 1M ms/round", "lower"),
    (("scale_bench", "points", "1000000", "bytes_per_node"), "scale 1M bytes/node", "lower"),
    (("scale_bench", "points", "1000000", "peak_rss_bytes"), "scale 1M peak RSS", "lower"),
]


def load_bench_summary(path: str) -> Dict[str, Any]:
    """Read one ``BENCH_summary.json``; raises AnalysisError if unusable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            summary = json.load(handle)
    except FileNotFoundError:
        raise AnalysisError(f"bench summary not found: {path}") from None
    except json.JSONDecodeError as error:
        raise AnalysisError(
            f"bench summary {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(summary, dict):
        raise AnalysisError(f"bench summary {path} is not a JSON object")
    return summary


def _lookup(summary: Dict[str, Any], path) -> Optional[float]:
    node: Any = summary
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def compare_bench_summaries(
    previous: Dict[str, Any],
    current: Dict[str, Any],
    max_regression: float = 0.2,
) -> Dict[str, Any]:
    """Diff two bench summaries; returns rows plus the regression list.

    A tracked metric regresses when it moves in the bad direction by
    more than ``max_regression`` relative to the previous value.
    Metrics missing from either side (schema growth, first run after a
    new section lands) are reported but never counted as regressions.
    Delivery-metric drift (crossovers per figure) is likewise reported
    as informational rows only.
    """
    if not 0.0 <= max_regression:
        raise AnalysisError(
            f"max_regression must be >= 0, got {max_regression}"
        )
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for path, label, direction in _TRACKED:
        before = _lookup(previous, path)
        after = _lookup(current, path)
        row: Dict[str, Any] = {
            "metric": label,
            "previous": before,
            "current": after,
            "direction": direction,
            "regressed": False,
        }
        if before is not None and after is not None and before > 0:
            change = (after - before) / before
            row["relative_change"] = change
            bad = change > max_regression if direction == "lower" else change < -max_regression
            if bad:
                row["regressed"] = True
                regressions.append(label)
        rows.append(row)

    drift: List[str] = []
    malformed: List[str] = []
    previous_figures = previous.get("figures", {})
    current_figures = current.get("figures", {})
    if isinstance(previous_figures, dict) and isinstance(current_figures, dict):
        for name in sorted(set(previous_figures) & set(current_figures)):
            before_figure = previous_figures[name]
            after_figure = current_figures[name]
            # A schema-shifted or hand-damaged artifact can hold
            # anything here; an unusable row is reported and skipped
            # rather than crashing the whole trend job.
            if not isinstance(before_figure, dict) or not isinstance(
                after_figure, dict
            ):
                malformed.append(name)
                continue
            before_cross = before_figure.get("crossovers")
            after_cross = after_figure.get("crossovers")
            if before_cross != after_cross:
                drift.append(name)

    return {
        "max_regression": max_regression,
        "rows": rows,
        "regressions": regressions,
        "metric_drift": drift,
        "malformed_figures": malformed,
    }


def render_bench_diff(diff: Dict[str, Any]) -> str:
    """Human-readable digest of :func:`compare_bench_summaries`."""
    lines = [f"bench trend (tolerance {diff['max_regression']:.0%}):"]
    for row in diff["rows"]:
        before, after = row["previous"], row["current"]
        if before is None or after is None:
            lines.append(f"  {row['metric']}: no baseline, skipped")
            continue
        change = row.get("relative_change", 0.0)
        flag = "  << REGRESSION" if row["regressed"] else ""
        lines.append(
            f"  {row['metric']}: {before:.3f} -> {after:.3f} "
            f"({change:+.1%}){flag}"
        )
    if diff["metric_drift"]:
        lines.append(
            "  delivery crossovers changed in: "
            + ", ".join(diff["metric_drift"])
            + " (informational)"
        )
    if diff.get("malformed_figures"):
        lines.append(
            "  unusable figure rows skipped: "
            + ", ".join(diff["malformed_figures"])
        )
    if not diff["regressions"]:
        lines.append("  no performance regressions")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Rolling history: sustained drift instead of single-run noise
# ----------------------------------------------------------------------

_HISTORY_PATTERN = re.compile(r"BENCH_(\d+)\.json$")


def _history_paths(history_dir: str) -> List[str]:
    """The history directory's artifacts, oldest first."""
    paths = [
        path
        for path in glob.glob(os.path.join(history_dir, "BENCH_*.json"))
        if _HISTORY_PATTERN.search(os.path.basename(path))
    ]
    paths.sort(
        key=lambda path: int(_HISTORY_PATTERN.search(path).group(1))
    )
    return paths


def update_bench_history(
    history_dir: str, current_path: str, window: int = 10
) -> List[str]:
    """Append the current artifact to a rolling history directory.

    Copies ``current_path`` in as the next ``BENCH_<seq>.json`` and
    prunes everything but the newest ``window`` artifacts.  Returns
    the window's paths, oldest first.  The current summary is
    validated first, so a corrupt artifact never enters the history.
    """
    if window < 1:
        raise AnalysisError(f"window must be >= 1, got {window}")
    load_bench_summary(current_path)
    os.makedirs(history_dir, exist_ok=True)
    existing = _history_paths(history_dir)
    next_seq = (
        int(_HISTORY_PATTERN.search(existing[-1]).group(1)) + 1
        if existing
        else 1
    )
    shutil.copyfile(
        current_path, os.path.join(history_dir, f"BENCH_{next_seq:06d}.json")
    )
    paths = _history_paths(history_dir)
    for stale in paths[:-window]:
        os.remove(stale)
    return paths[-window:]


def compare_bench_history(
    summaries: List[Dict[str, Any]],
    max_regression: float = 0.2,
    min_sustained: int = 3,
) -> Dict[str, Any]:
    """Scan a chronological window of summaries for sustained drift.

    A tracked metric is flagged only when it moved in the bad
    direction on each of the last ``min_sustained`` run-to-run steps
    *and* the cumulative change over that stretch exceeds
    ``max_regression`` — one noisy run can neither trigger the flag
    (its neighbour step moves the other way) nor hide a real drift
    (the cumulative test spans the full stretch).  "Consecutive" means
    adjacent *summaries*: a metric absent from any of the window's
    newest ``min_sustained + 1`` artifacts (schema growth, a bench
    section skipped on that runner) is reported as an informational
    row, never flagged — gaps must not be stitched into a fake streak.
    """
    if not 0.0 <= max_regression:
        raise AnalysisError(
            f"max_regression must be >= 0, got {max_regression}"
        )
    if min_sustained < 1:
        raise AnalysisError(
            f"min_sustained must be >= 1, got {min_sustained}"
        )
    rows: List[Dict[str, Any]] = []
    sustained: List[str] = []
    for path, label, direction in _TRACKED:
        aligned = [_lookup(summary, path) for summary in summaries]
        values = [value for value in aligned if value is not None]
        row: Dict[str, Any] = {
            "metric": label,
            "direction": direction,
            "values": values,
            "sustained": False,
        }
        stretch = aligned[-(min_sustained + 1) :]
        if (
            len(stretch) == min_sustained + 1
            and all(value is not None for value in stretch)
        ):
            steps = [after - before for before, after in zip(stretch, stretch[1:])]
            monotone_bad = (
                all(step > 0 for step in steps)
                if direction == "lower"
                else all(step < 0 for step in steps)
            )
            if monotone_bad and stretch[0] > 0:
                change = (stretch[-1] - stretch[0]) / stretch[0]
                row["relative_change"] = change
                beyond = (
                    change > max_regression
                    if direction == "lower"
                    else change < -max_regression
                )
                if beyond:
                    row["sustained"] = True
                    sustained.append(label)
        rows.append(row)
    return {
        "window": len(summaries),
        "min_sustained": min_sustained,
        "max_regression": max_regression,
        "rows": rows,
        "sustained_regressions": sustained,
    }


def render_bench_history(report: Dict[str, Any]) -> str:
    """Human-readable digest of :func:`compare_bench_history`."""
    lines = [
        f"bench history ({report['window']} run(s), sustained = "
        f"{report['min_sustained']} consecutive bad steps beyond "
        f"{report['max_regression']:.0%}):"
    ]
    for row in report["rows"]:
        values = row["values"]
        if not values:
            lines.append(f"  {row['metric']}: no data in window")
            continue
        series = " -> ".join(f"{value:.3f}" for value in values[-5:])
        flag = ""
        if row["sustained"]:
            flag = f"  << SUSTAINED DRIFT ({row['relative_change']:+.1%})"
        lines.append(f"  {row['metric']}: {series}{flag}")
    if not report["sustained_regressions"]:
        lines.append("  no sustained drift")
    return "\n".join(lines)
