"""Regeneration of the paper's figures.

Each function returns ``{curve label: TimeSeries}`` sampled on a
shared attacker-fraction grid, ready for
:func:`repro.harness.ascii.render_series_table` /
:func:`~repro.harness.ascii.render_chart`, plus crossover extraction
mirroring how the paper reads its figures ("the attacker needs to
control 42% of the system to ensure fewer than 93% of the updates are
delivered").

The ``fast`` profiles shrink rounds and repetitions so the benchmark
suite can regenerate every figure in seconds; the defaults match the
fidelity used for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..bargossip.attacker import AttackKind
from ..bargossip.config import GossipConfig
from ..bargossip.defenses import figure3_variants, with_larger_pushes
from ..bargossip.network import NetworkModel
from ..bargossip.scenario import ExecutionConfig, Scenario
from ..core.metrics import USABILITY_THRESHOLD, TimeSeries
from .parallel import SweepExecutor
from .sweep import sweep_series
from .tasks import GossipSweepTask

__all__ = [
    "DEFAULT_FRACTIONS",
    "FAST_FRACTIONS",
    "GossipSweepTask",
    "attack_curve",
    "figure1",
    "figure2",
    "figure3",
    "crossovers",
]

#: Attacker-fraction grid for full-fidelity figure regeneration.
DEFAULT_FRACTIONS: Tuple[float, ...] = (
    0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.15, 0.18, 0.22,
    0.26, 0.30, 0.36, 0.42, 0.48, 0.55, 0.65, 0.75,
)

#: Coarser grid for the benchmark suite.
FAST_FRACTIONS: Tuple[float, ...] = (0.02, 0.04, 0.08, 0.15, 0.22, 0.30, 0.42, 0.55)


def attack_curve(
    config: GossipConfig,
    kind: AttackKind,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    rounds: int = 50,
    repetitions: int = 1,
    root_seed: int = 0,
    label: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
    execution: Optional[ExecutionConfig] = None,
) -> TimeSeries:
    """One curve: isolated-node delivery vs attacker fraction.

    ``network``/``schedule`` replay the same attack sweep against an
    asynchronous network (latency, loss, churn) on the event engine;
    ``execution`` decides only how cells run and never changes results.
    """
    scenario = Scenario(
        config=config,
        network=network if network is not None else NetworkModel.ideal(),
        schedule=schedule,
        kind=kind,
        rounds=rounds,
    )
    return sweep_series(
        label=label or f"{kind.value} attack",
        grid=fractions,
        run_one=GossipSweepTask(
            scenario=scenario,
            execution=execution if execution is not None else ExecutionConfig(),
        ),
        repetitions=repetitions,
        root_seed=root_seed,
        executor=executor,
        experiment=f"attack_curve:{kind.value}",
    )


def figure1(
    config: Optional[GossipConfig] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    rounds: int = 50,
    repetitions: int = 1,
    root_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
    execution: Optional[ExecutionConfig] = None,
) -> Dict[str, TimeSeries]:
    """Figure 1: crash vs ideal vs trade lotus-eater attack.

    Paper crossovers (fraction needed to push isolated delivery below
    93%): crash ~= 0.42, ideal ~= 0.04, trade ~= 0.22.
    """
    config = config if config is not None else GossipConfig.paper()
    return {
        "Crash attack": attack_curve(
            config, AttackKind.CRASH, fractions, rounds, repetitions, root_seed,
            label="Crash attack", executor=executor,
            network=network, schedule=schedule, execution=execution,
        ),
        "Ideal lotus-eater attack": attack_curve(
            config, AttackKind.IDEAL, fractions, rounds, repetitions, root_seed,
            label="Ideal lotus-eater attack", executor=executor,
            network=network, schedule=schedule, execution=execution,
        ),
        "Trade lotus-eater attack": attack_curve(
            config, AttackKind.TRADE, fractions, rounds, repetitions, root_seed,
            label="Trade lotus-eater attack", executor=executor,
            network=network, schedule=schedule, execution=execution,
        ),
    }


def figure2(
    config: Optional[GossipConfig] = None,
    push_size: int = 10,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    rounds: int = 50,
    repetitions: int = 1,
    root_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
    execution: Optional[ExecutionConfig] = None,
) -> Dict[str, TimeSeries]:
    """Figure 2: the same three attacks with a larger optimistic push.

    Paper: with push size 10, the ideal attack "now requires at least
    15% of the nodes" and the trade attack nearly doubles to ~40%.
    """
    config = config if config is not None else GossipConfig.paper()
    return figure1(
        with_larger_pushes(config, push_size),
        fractions=fractions,
        rounds=rounds,
        repetitions=repetitions,
        root_seed=root_seed,
        executor=executor,
        network=network,
        schedule=schedule,
        execution=execution,
    )


def figure3(
    config: Optional[GossipConfig] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    rounds: int = 50,
    repetitions: int = 1,
    root_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
    execution: Optional[ExecutionConfig] = None,
) -> Dict[str, TimeSeries]:
    """Figure 3: trade attack vs push size and exchange-balance defenses.

    Paper: push 4 + unbalanced exchanges together "increase the
    fraction of the system the attacker needs to control by almost
    50%" over push 2 + balanced.
    """
    config = config if config is not None else GossipConfig.paper()
    curves: Dict[str, TimeSeries] = {}
    for name, variant in figure3_variants(config).items():
        curves[name] = attack_curve(
            variant,
            AttackKind.TRADE,
            fractions,
            rounds,
            repetitions,
            root_seed,
            label=name,
            executor=executor,
            network=network,
            schedule=schedule,
            execution=execution,
        )
    return curves


def crossovers(
    curves: Dict[str, TimeSeries], threshold: float = USABILITY_THRESHOLD
) -> Dict[str, Optional[float]]:
    """The attacker fraction at which each curve crosses the threshold."""
    return {label: ts.crossover_below(threshold) for label, ts in curves.items()}
