"""Supervised worker pools: liveness, deadlines, retry, backoff.

``multiprocessing.Pool`` cannot survive worker loss: an OOM-killed (or
``os._exit``-ed) worker leaves ``Pool.map`` waiting forever for a
result that will never arrive, and a wedged worker is indistinguishable
from a slow one.  :class:`SupervisedPool` replaces it for the sweep and
shard execution paths with explicit dispatch the coordinator can
reason about:

* **one in-flight task per worker** — when a worker dies, exactly one
  task is known lost; only that task re-runs;
* **liveness checks** — ``Process.is_alive()`` polled between reaps, so
  a dead worker is *detected* (and respawned through the same
  initializer, which re-attaches shared memory) instead of hanging the
  dispatch loop;
* **per-task deadlines** — a wedged worker misses its deadline, is
  terminated, and its task re-runs elsewhere;
* **seeded exponential backoff and a retry budget** — transient
  failures retry with deterministic jitter; budget exhaustion produces
  a terminal :class:`TaskFailure` record (or, with
  ``abort_on_failure``, tears the pool down and raises
  :class:`~repro.core.errors.WorkerCrash` — the fail-fast mode the
  shared-memory phases need, where surviving workers must be stopped
  before the coordinator restores the segment);
* **attempt tags** — every dispatch carries its attempt number, so a
  stale result from a superseded attempt is discarded, never merged.

Determinism note: supervision decides *where and when* work runs,
never *what* it computes.  Tasks must be pure functions of their
payload (the repository's cells and shard slices are — pinned by the
parity suites), which is exactly why a retried task is guaranteed to
reproduce the lost result bit-for-bit.

This module also owns the live-pool registry: every started pool is
swept at interpreter exit (and finalized on garbage collection), so an
abandoned executor cannot leak worker processes.
"""

from __future__ import annotations

import atexit
import heapq
import multiprocessing
import queue
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import AnalysisError, WorkerCrash

__all__ = [
    "SupervisionPolicy",
    "TaskFailure",
    "CellFailure",
    "SupervisedPool",
    "WorkerCrash",
]

#: How long one outbox reap waits before the liveness sweep runs.
_REAP_INTERVAL = 0.02

#: Grace given to a terminated process before it is abandoned to the
#: exit sweep.
_TERMINATE_JOIN = 1.0


@dataclass(frozen=True)
class SupervisionPolicy:
    """How failures are retried.

    ``retries`` is the number of *re*-attempts per task after the
    first; ``task_timeout`` (seconds, None = no deadline) is per
    dispatch.  Backoff before attempt ``n``'s retry is
    ``min(backoff_max, backoff_base * 2**(n-1))`` scaled by a jitter
    factor in [0.5, 1.0) drawn from ``default_rng(seed)`` — seeded, so
    a re-run schedules identically.
    """

    retries: int = 2
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise AnalysisError(f"retries must be >= 0, got {self.retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise AnalysisError(
                f"task_timeout must be > 0 or None, got {self.task_timeout}"
            )

    def backoff_delay(self, attempt: int, rng: "np.random.Generator") -> float:
        """Seconds to wait before re-dispatching attempt ``attempt+1``."""
        delay = min(self.backoff_max, self.backoff_base * (2 ** max(0, attempt - 1)))
        return delay * (0.5 + 0.5 * float(rng.random()))


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one pool task (its retry budget spent)."""

    index: int
    label: str
    attempts: int
    #: How the final attempt ended: "crashed" (worker process died),
    #: "timeout" (missed its deadline and was terminated), or "raised"
    #: (the task body raised).
    fate: str
    error: str


@dataclass(frozen=True)
class CellFailure:
    """Terminal failure of one sweep cell, for sweep/bench artifacts."""

    x: float
    seed: int
    attempts: int
    fate: str
    error: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "x": self.x,
            "seed": self.seed,
            "attempts": self.attempts,
            "fate": self.fate,
            "error": self.error,
        }


class _ResultChannel:
    """Worker → supervisor result stream without a feeder thread.

    ``multiprocessing.Queue`` flushes ``put`` from a background feeder
    thread, so a worker killed at an arbitrary instruction (a crash, an
    OOM kill, an injected ``os._exit``) can die while its feeder holds
    the shared cross-process write lock mid-frame — every surviving
    worker then blocks in ``put`` on the orphaned lock and the
    supervisor starves without anything being observably dead.  Here
    the worker sends from its *main* thread: while it is executing task
    code — where crashes, injected faults and deadline terminations
    land — it cannot be holding the lock, so its death cannot poison
    the channel for the others.
    """

    def __init__(self, context) -> None:
        self._reader, self._writer = context.Pipe(duplex=False)
        self._lock = context.Lock()

    def put(self, item: Any) -> None:
        with self._lock:
            self._writer.send(item)

    def get(self, timeout: Optional[float] = None) -> Any:
        if not self._reader.poll(timeout):
            raise queue.Empty
        return self._reader.recv()

    def get_nowait(self) -> Any:
        return self.get(0)

    def close(self) -> None:
        for end in (self._writer, self._reader):
            try:
                end.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass


def _worker_main(
    inbox: "multiprocessing.queues.Queue",
    outbox: _ResultChannel,
    initializer: Optional[Callable[..., None]],
    initargs: Tuple[Any, ...],
) -> None:
    """Worker loop: initialize once, then (task, attempt) in, result out.

    Exceptions from the task body travel back as data (rendered, not
    pickled — arbitrary exceptions may not unpickle in the parent); a
    raising *initializer* kills the worker, which the supervisor sees
    as a crash and handles through the same respawn path.
    """
    if initializer is not None:
        initializer(*initargs)
    while True:
        item = inbox.get()
        if item is None:
            return
        task_id, attempt, func, payload = item
        try:
            value = func(payload)
        except BaseException as exc:  # noqa: BLE001 - forwarded as data
            outbox.put(
                (task_id, attempt, False, f"{type(exc).__name__}: {exc}")
            )
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                return
        else:
            outbox.put((task_id, attempt, True, value))


class _Worker:
    """One supervised worker process and its dedicated inbox."""

    __slots__ = ("process", "inbox", "current", "deadline")

    def __init__(self, process, inbox) -> None:
        self.process = process
        self.inbox = inbox
        #: (task_id, attempt) currently dispatched to this worker.
        self.current: Optional[Tuple[int, int]] = None
        #: monotonic deadline for the current task (None = no limit).
        self.deadline: Optional[float] = None


def _discard_queue(q) -> None:
    """Release a queue without risking a join on its feeder thread."""
    try:
        q.cancel_join_thread()
        q.close()
    except Exception:  # pragma: no cover - best-effort teardown
        pass


def _terminate_members(members: List[_Worker]) -> None:
    """Kill every worker in ``members`` (GC/exit safety net)."""
    for worker in members:
        try:
            if worker.process.is_alive():
                worker.process.terminate()
        except Exception:  # pragma: no cover - teardown best effort
            pass
    for worker in members:
        try:
            worker.process.join(_TERMINATE_JOIN)
        except Exception:  # pragma: no cover - teardown best effort
            pass


class SupervisedPool:
    """A process pool whose coordinator detects and survives failures.

    Parameters mirror ``multiprocessing.Pool`` where they overlap:
    ``initializer(*initargs)`` runs once per worker (and again in every
    *respawned* worker — this is what re-attaches shared memory after a
    crash); ``mp_context`` picks the start method.

    The pool is deliberately single-dispatcher: :meth:`run` owns the
    workers for its duration.  That matches both call sites (a sweep
    executes one batch of chunks at a time; a sharded round executes
    one phase at a time) and is what makes worker loss attributable to
    exactly one task.
    """

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise AnalysisError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._context = multiprocessing.get_context(mp_context)
        self._outbox = _ResultChannel(self._context)
        self._members: List[_Worker] = []
        self._dead = False
        #: Lifetime respawn count (observable in tests and stats).
        self.respawns = 0
        # GC safety net: losing the last reference to a live pool must
        # not leak its children.  close()/terminate() detach this.
        self._finalizer = weakref.finalize(
            self, _terminate_members, self._members
        )

    # -- lifecycle -----------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the pool currently has worker processes."""
        return bool(self._members)

    def _spawn(self) -> _Worker:
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(inbox, self._outbox, self._initializer, self._initargs),
            daemon=True,
        )
        process.start()
        return _Worker(process, inbox)

    def start(self) -> None:
        """Ensure the full complement of workers is running."""
        if self._dead:
            raise AnalysisError("pool has been closed; create a new one")
        if not self._members:
            _LIVE_POOLS.add(self)
        while len(self._members) < self.workers:
            self._members.append(self._spawn())

    def warm_up(self) -> None:
        """Alias of :meth:`start`, matching the executor's vocabulary."""
        self.start()

    def close(self, join_deadline: float = 5.0) -> None:
        """Graceful shutdown with a deadline, then force.

        Sends every worker a stop sentinel and waits up to
        ``join_deadline`` seconds total; stragglers (wedged workers —
        the very failure mode this layer exists for) are terminated.
        Idempotent, and the pool is unusable afterwards.
        """
        for worker in self._members:
            try:
                worker.inbox.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.monotonic() + max(0.0, join_deadline)
        for worker in self._members:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                worker.process.join(remaining)
        self._reap_all()

    def terminate(self) -> None:
        """Kill the workers immediately (failure path; idempotent)."""
        for worker in self._members:
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self._members:
            worker.process.join(_TERMINATE_JOIN)
        self._reap_all()

    def _reap_all(self) -> None:
        for worker in self._members:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_TERMINATE_JOIN)
            _discard_queue(worker.inbox)
        self._members.clear()
        self._drain_outbox()
        self._dead = True
        self._outbox.close()
        self._finalizer.detach()
        _LIVE_POOLS.discard(self)

    def _drain_outbox(self) -> None:
        try:
            while True:
                self._outbox.get_nowait()
        except (queue.Empty, EOFError, OSError, ValueError):
            pass

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._members else ("dead" if self._dead else "idle")
        return f"SupervisedPool(workers={self.workers}, {state})"

    # -- supervised dispatch -------------------------------------------

    def run(
        self,
        func: Callable[[Any], Any],
        tasks: Sequence[Any],
        policy: Optional[SupervisionPolicy] = None,
        labels: Optional[Sequence[str]] = None,
        timeouts: Optional[Sequence[Optional[float]]] = None,
        abort_on_failure: bool = False,
    ) -> Tuple[List[Any], List[TaskFailure]]:
        """Execute ``func(task)`` for every task, surviving worker loss.

        Returns ``(results, failures)``: ``results`` is positionally
        aligned with ``tasks`` (``None`` where a task terminally
        failed), ``failures`` the terminal :class:`TaskFailure`
        records.  ``timeouts`` overrides the policy deadline per task
        (chunked callers scale the deadline by chunk size).

        With ``abort_on_failure`` the first failed *attempt* of any
        task terminates the whole pool and raises
        :class:`WorkerCrash` — no retry, no surviving workers.
        """
        policy = policy if policy is not None else SupervisionPolicy()
        n = len(tasks)
        results: List[Any] = [None] * n
        failures: List[TaskFailure] = []
        if n == 0:
            return results, failures
        if timeouts is not None and len(timeouts) != n:
            raise AnalysisError(
                f"got {len(timeouts)} timeouts for {n} tasks"
            )
        self.start()

        def label_of(task_id: int) -> str:
            return labels[task_id] if labels is not None else f"task {task_id}"

        def deadline_of(task_id: int) -> Optional[float]:
            if timeouts is not None:
                return timeouts[task_id]
            return policy.task_timeout

        rng = np.random.default_rng(policy.seed)
        attempts = [0] * n
        done = [False] * n
        ready: "deque[int]" = deque(range(n))
        delayed: List[Tuple[float, int]] = []  # (not_before, task_id) heap
        inflight: Dict[int, _Worker] = {}
        completed = 0
        # Respawn budget: a backstop against an initializer that dies
        # deterministically (every respawn would die again, forever).
        respawn_budget = self.workers * (policy.retries + 2) + n

        def record_failure(task_id: int, fate: str, error: str) -> None:
            nonlocal completed
            if abort_on_failure:
                self.terminate()
                raise WorkerCrash(label_of(task_id), fate, error)
            if attempts[task_id] <= policy.retries:
                not_before = time.monotonic() + policy.backoff_delay(
                    attempts[task_id], rng
                )
                heapq.heappush(delayed, (not_before, task_id))
            else:
                done[task_id] = True
                completed += 1
                failures.append(
                    TaskFailure(
                        index=task_id,
                        label=label_of(task_id),
                        attempts=attempts[task_id],
                        fate=fate,
                        error=error,
                    )
                )

        def fail_everything_pending(error: str) -> None:
            nonlocal completed
            pending = [t for t in range(n) if not done[t]]
            for task_id in pending:
                done[task_id] = True
                completed += 1
                failures.append(
                    TaskFailure(
                        index=task_id,
                        label=label_of(task_id),
                        attempts=max(1, attempts[task_id]),
                        fate="crashed",
                        error=error,
                    )
                )
            if abort_on_failure and pending:
                self.terminate()
                raise WorkerCrash(label_of(pending[0]), "crashed", error)

        while completed < n:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                ready.append(heapq.heappop(delayed)[1])

            for worker in self._members:
                if worker.current is not None or not ready:
                    continue
                task_id = ready.popleft()
                attempts[task_id] += 1
                worker.current = (task_id, attempts[task_id])
                limit = deadline_of(task_id)
                worker.deadline = (now + limit) if limit is not None else None
                inflight[task_id] = worker
                worker.inbox.put(
                    (task_id, attempts[task_id], func, tasks[task_id])
                )

            try:
                message = self._outbox.get(timeout=_REAP_INTERVAL)
            except queue.Empty:
                message = None
            if message is not None:
                task_id, attempt, ok, payload = message
                # Attempt tags discard stale results from superseded
                # dispatches — a terminated worker's last gasp must
                # never overwrite a retried task.
                if not done[task_id] and attempt == attempts[task_id]:
                    worker = inflight.pop(task_id, None)
                    if worker is not None:
                        worker.current = None
                        worker.deadline = None
                    if ok:
                        results[task_id] = payload
                        done[task_id] = True
                        completed += 1
                    else:
                        record_failure(task_id, "raised", payload)

            now = time.monotonic()
            for worker in list(self._members):
                if worker.process.is_alive():
                    if worker.deadline is not None and now > worker.deadline:
                        # Wedged: terminate, re-run the task elsewhere.
                        worker.process.terminate()
                        worker.process.join(_TERMINATE_JOIN)
                    else:
                        continue
                # Dead (crashed on its own, or terminated just above).
                self._members.remove(worker)
                _discard_queue(worker.inbox)
                held = worker.current
                if self.respawns < respawn_budget:
                    self.respawns += 1
                    self._members.append(self._spawn())
                elif not self._members:
                    fail_everything_pending(
                        "worker respawn budget exhausted (initializer "
                        "failing deterministically?)"
                    )
                    break
                if held is None:
                    continue  # died between tasks (e.g. in initializer)
                task_id, attempt = held
                inflight.pop(task_id, None)
                if done[task_id] or attempt != attempts[task_id]:
                    continue
                exitcode = worker.process.exitcode
                if worker.deadline is not None and now > worker.deadline:
                    record_failure(
                        task_id,
                        "timeout",
                        f"missed {deadline_of(task_id)}s deadline "
                        f"(worker terminated)",
                    )
                else:
                    record_failure(
                        task_id,
                        "crashed",
                        f"worker exited with code {exitcode}",
                    )
        return results, failures


#: Pools with live workers, swept at interpreter exit so an abandoned
#: pool (coordinator exception, forgotten close) cannot leak children.
#: The sweep executor and the shard pool both live here: their backing
#: pools register on start and deregister on close/terminate.
_LIVE_POOLS: "weakref.WeakSet[SupervisedPool]" = weakref.WeakSet()


@atexit.register
def _terminate_live_pools() -> None:  # pragma: no cover - exit hook
    for pool in list(_LIVE_POOLS):
        try:
            pool.terminate()
        except Exception:
            pass
