"""Regeneration of the paper's Table 1 and summary reports.

Table 1 lists the simulation parameters; the reproduction prints the
same rows from the live configuration object (so the table can never
drift from the code) and appends the baseline sanity check implied by
the surrounding text: with these parameters and no attack, nodes
receive a usable stream (>93% of updates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bargossip.attacker import AttackKind
from ..bargossip.config import GossipConfig
from ..bargossip.scenario import Scenario
from .ascii import render_table
from .figures import GossipSweepTask
from .parallel import SweepCell, SweepExecutor

__all__ = ["table1_rows", "render_table1", "baseline_check"]

#: (paper row label, config attribute) in Table 1 order.
_TABLE1_LAYOUT: Tuple[Tuple[str, str], ...] = (
    ("Number of Nodes", "n_nodes"),
    ("Updates per Round", "updates_per_round"),
    ("Update Lifetime (rds)", "update_lifetime"),
    ("Copies Seeded", "copies_seeded"),
    ("Opt. Push Size (upd)", "push_size"),
)

#: The values printed in the paper's Table 1.
PAPER_TABLE1: Dict[str, int] = {
    "Number of Nodes": 250,
    "Updates per Round": 10,
    "Update Lifetime (rds)": 10,
    "Copies Seeded": 12,
    "Opt. Push Size (upd)": 2,
}


def table1_rows(config: Optional[GossipConfig] = None) -> List[Tuple[str, int, int]]:
    """Rows of (parameter, paper value, our value)."""
    config = config if config is not None else GossipConfig.paper()
    return [
        (label, PAPER_TABLE1[label], getattr(config, attribute))
        for label, attribute in _TABLE1_LAYOUT
    ]


def render_table1(config: Optional[GossipConfig] = None) -> str:
    """Table 1 as aligned text, paper values beside ours."""
    rows = table1_rows(config)
    return render_table(["Parameter", "Paper", "Ours"], rows)


def baseline_check(
    config: Optional[GossipConfig] = None,
    rounds: int = 50,
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, float]:
    """The sanity check behind Table 1: no attack, usable stream.

    Returns the no-attack delivery fraction and the usability
    threshold; a reproduction is healthy when delivery exceeds the
    threshold with margin.  Routed through the sweep executor as a
    single cell so repeated CI runs serve it from the result cache.
    """
    config = config if config is not None else GossipConfig.paper()
    executor = executor if executor is not None else SweepExecutor(jobs=1)
    task = GossipSweepTask(
        scenario=Scenario(config=config, kind=AttackKind.NONE, rounds=rounds),
        metric="correct_fraction",
    )
    values = executor.map(
        task, [SweepCell(x=0.0, seed=seed)], experiment="baseline_check"
    )
    assert values[0] is not None
    return {
        "delivery_fraction": values[0],
        "usability_threshold": config.usability_threshold,
    }
