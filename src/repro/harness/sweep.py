"""Generic parameter sweeps with per-point repetition.

Every figure in the paper is a sweep of one scalar (the fraction of
nodes the attacker controls) against one response (delivery to
isolated nodes).  This module factors the pattern: run a callable over
a grid, repeat each point across derived seeds, and aggregate mean and
a 95% confidence half-width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.errors import AnalysisError
from ..core.metrics import TimeSeries, confidence_interval_95
from ..core.rng import spawn_seeds

__all__ = ["SweepPoint", "sweep", "sweep_series"]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated response at one grid value."""

    x: float
    mean: float
    half_width_95: float
    samples: int


def sweep(
    grid: Sequence[float],
    run_one: Callable[[float, int], Optional[float]],
    repetitions: int = 1,
    root_seed: int = 0,
) -> List[SweepPoint]:
    """Evaluate ``run_one(x, seed)`` over ``grid`` with repetitions.

    ``run_one`` may return None (e.g. no isolated nodes exist at that
    point); such samples are dropped, and a point with no valid sample
    raises — silently empty figure points would hide broken configs.
    """
    if repetitions < 1:
        raise AnalysisError(f"repetitions must be >= 1, got {repetitions}")
    points: List[SweepPoint] = []
    for x in grid:
        seeds = spawn_seeds(root_seed, repetitions, label=f"sweep:{x}")
        values = [run_one(x, seed) for seed in seeds]
        valid = [value for value in values if value is not None]
        if not valid:
            raise AnalysisError(f"no valid samples at grid point {x}")
        center, half_width = confidence_interval_95(valid)
        points.append(
            SweepPoint(x=float(x), mean=center, half_width_95=half_width, samples=len(valid))
        )
    return points


def sweep_series(
    label: str,
    grid: Sequence[float],
    run_one: Callable[[float, int], Optional[float]],
    repetitions: int = 1,
    root_seed: int = 0,
) -> TimeSeries:
    """Like :func:`sweep` but packaged as a plottable TimeSeries."""
    series = TimeSeries(label=label)
    for point in sweep(grid, run_one, repetitions=repetitions, root_seed=root_seed):
        series.append(point.x, point.mean)
    return series
