"""Generic parameter sweeps with per-point repetition.

Every figure in the paper is a sweep of one scalar (the fraction of
nodes the attacker controls) against one response (delivery to
isolated nodes).  This module factors the pattern: run a callable over
a grid, repeat each point across derived seeds, and aggregate mean and
a 95% confidence half-width.

Execution is delegated to a :class:`~repro.harness.parallel.SweepExecutor`:
by default a serial in-process one, but callers can pass an executor
with a worker pool and a result cache and every (grid-point, seed)
cell fans out while the reduction stays bit-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.errors import AnalysisError
from ..core.metrics import TimeSeries, confidence_interval_95
from ..core.rng import spawn_seeds
from .parallel import SweepCell, SweepExecutor

__all__ = ["SweepPoint", "sweep", "sweep_series"]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated response at one grid value."""

    x: float
    mean: float
    half_width_95: float
    samples: int


def sweep(
    grid: Sequence[float],
    run_one: Callable[[float, int], Optional[float]],
    repetitions: int = 1,
    root_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    experiment: Optional[str] = None,
) -> List[SweepPoint]:
    """Evaluate ``run_one(x, seed)`` over ``grid`` with repetitions.

    ``run_one`` may return None (e.g. no isolated nodes exist at that
    point); such samples are dropped, and a point with no valid sample
    raises — silently empty figure points would hide broken configs.

    ``executor`` controls where cells run (and whether they are served
    from a result cache); ``experiment`` names the sweep for cache
    keying.  The per-repetition seeds are spawned from ``root_seed``
    exactly as in serial execution, so results do not depend on the
    executor's job count.
    """
    if repetitions < 1:
        raise AnalysisError(f"repetitions must be >= 1, got {repetitions}")
    grid = list(grid)  # the grid is iterated twice; accept one-shot iterables
    executor = executor if executor is not None else SweepExecutor(jobs=1)
    cells: List[SweepCell] = []
    occurrences: Dict[float, int] = {}
    for x in grid:
        # The seed label must normalize exactly like the cache key does
        # (cell_key hashes float(x)): an int-vs-float grid (`[0, 1]` vs
        # `[0.0, 1.0]`) must derive the same repetition seeds, or the
        # cache could serve results computed under seeds the caller
        # never spawned.
        x = float(x)
        # Repeated grid values are independent repetitions, not copies:
        # disambiguating the label by occurrence gives each duplicate
        # its own seed list, and since cell cache keys hash the seed,
        # duplicates can never alias each other's cache cells either.
        # The first occurrence keeps the historical label, so single-
        # occurrence grids derive exactly the seeds they always did.
        occurrence = occurrences.get(x, 0)
        occurrences[x] = occurrence + 1
        label = f"sweep:{x}" if occurrence == 0 else f"sweep:{x}#{occurrence}"
        for seed in spawn_seeds(root_seed, repetitions, label=label):
            cells.append(SweepCell(x=x, seed=seed))
    values = executor.map(run_one, cells, experiment=experiment)

    points: List[SweepPoint] = []
    for index, x in enumerate(grid):
        samples = values[index * repetitions : (index + 1) * repetitions]
        valid = [value for value in samples if value is not None]
        if not valid:
            # With on_failure="skip" a point can lose every sample to
            # terminal cell failures; name them instead of letting the
            # generic message hide what actually went wrong.
            lost = [
                failure
                for failure in executor.failures
                if failure.x == float(x)
            ]
            detail = (
                f" ({len(lost)} cell(s) failed terminally: "
                f"{lost[0].fate} — {lost[0].error})"
                if lost
                else ""
            )
            raise AnalysisError(f"no valid samples at grid point {x}{detail}")
        center, half_width = confidence_interval_95(valid)
        points.append(
            SweepPoint(x=float(x), mean=center, half_width_95=half_width, samples=len(valid))
        )
    return points


def sweep_series(
    label: str,
    grid: Sequence[float],
    run_one: Callable[[float, int], Optional[float]],
    repetitions: int = 1,
    root_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    experiment: Optional[str] = None,
) -> TimeSeries:
    """Like :func:`sweep` but packaged as a plottable TimeSeries."""
    series = TimeSeries(label=label)
    points = sweep(
        grid,
        run_one,
        repetitions=repetitions,
        root_seed=root_seed,
        executor=executor,
        experiment=experiment,
    )
    for point in points:
        series.append(point.x, point.mean)
    return series
