"""Picklable sweep tasks for every model in the repository.

A *sweep task* is the unit the sweep harness fans out: a tiny, frozen,
picklable spec that maps ``(grid value, seed)`` to one scalar response.
The :class:`SweepTask` protocol pins down the contract —

* ``__call__(x, seed)`` runs one experiment cell and returns the
  response (or None to drop the sample);
* ``cache_fingerprint()`` reduces the full task configuration to a
  JSON-serializable structure that
  :func:`repro.harness.cache.cell_key` hashes into result-cache keys,
  so *any* configuration change transparently invalidates cached
  cells.

PR 1 introduced the pattern for the gossip figures
(:class:`GossipSweepTask`); this module generalizes it so the scrip
economy, the token model, and the BitTorrent swarm ride the same
executor: all four models gain ``--jobs`` fan-out, content-addressed
result caching, and a ``lotus-eater sweep`` CLI subcommand for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Protocol, Tuple, runtime_checkable

from ..bargossip.attacker import AttackKind
from ..bargossip.config import GossipConfig
from ..bargossip.network import NetworkModel
from ..bargossip.scenario import ExecutionConfig, Scenario
from ..bittorrent.config import SwarmConfig
from ..core.rng import derive_seed
from ..scrip.config import ScripConfig
from .cache import fingerprint_of

__all__ = [
    "SweepTask",
    "GossipSweepTask",
    "ScripAltruistTask",
    "TokenSweepTask",
    "SwarmSweepTask",
    "TASK_BUILDERS",
]


@runtime_checkable
class SweepTask(Protocol):
    """What the sweep executor requires of a fan-out-able task."""

    def __call__(self, x: float, seed: int) -> Optional[float]:
        """Run one cell; None drops the sample."""

    def cache_fingerprint(self) -> Dict[str, Any]:
        """JSON-serializable digest of the full task configuration."""


@dataclass(frozen=True)
class GossipSweepTask:
    """A picklable ``run_one(fraction, seed)`` for gossip sweeps.

    The sweep executor ships this object to worker processes (a plain
    closure over a scenario would not pickle) and hashes
    :meth:`cache_fingerprint` into result-cache keys, so changing any
    scenario field — protocol, network model or schedule —
    transparently invalidates cached cells.  The grid value is the
    attacker fraction: each cell runs ``scenario.replace(
    attacker_fraction=x)`` through :func:`~repro.bargossip.scenario.
    run_experiment`.  ``execution`` decides only *how* cells run and
    is deliberately absent from the fingerprint (execution strategy
    never changes results — pinned by the parity suites).
    """

    scenario: Scenario
    execution: ExecutionConfig = ExecutionConfig()
    metric: str = "isolated_fraction"

    def __call__(self, fraction: float, seed: int) -> Optional[float]:
        from ..bargossip.scenario import run_experiment

        result = run_experiment(
            self.scenario.replace(attacker_fraction=fraction),
            execution=self.execution,
            seed=seed,
        )
        return getattr(result, self.metric)

    def cache_fingerprint(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "execution": self.execution.cache_fingerprint(),
            "metric": self.metric,
        }


@dataclass(frozen=True)
class ScripAltruistTask:
    """``run_one(altruist count, seed)`` over the scrip economy.

    Wraps the :func:`repro.scrip.analysis.altruist_sweep` cell —
    build a standard population with ``round(x)`` altruists, run the
    economy, report one :class:`~repro.scrip.analysis.EconomyReport`
    metric — as a picklable task, which is what lets the Section 4
    altruist-crash curve fan out across workers and cache per cell.
    """

    config: ScripConfig
    rounds: int = 20000
    warmup: int = 2000
    metric: str = "service_rate"

    def __call__(self, x: float, seed: int) -> Optional[float]:
        from ..scrip.analysis import measure_economy
        from ..scrip.system import ScripSystem, build_agents

        agents = build_agents(self.config, altruists=int(round(x)))
        system = ScripSystem(self.config, agents=agents, seed=seed)
        report = measure_economy(system, rounds=self.rounds, warmup=self.warmup)
        value = getattr(report, self.metric)
        return None if value is None else float(value)

    def cache_fingerprint(self) -> Dict[str, Any]:
        return {
            "config": fingerprint_of(self.config),
            "rounds": self.rounds,
            "warmup": self.warmup,
            "metric": self.metric,
        }


@dataclass(frozen=True)
class TokenSweepTask:
    """``run_one(altruism, seed)`` over the token model.

    Wraps :func:`repro.tokenmodel.simulator.run_token_experiment` on a
    grid graph with a uniform allocation: the grid value is the
    altruism parameter, and ``cut_column`` (when set) mounts the
    cut-satiation attack along that column.  The allocation is drawn
    from a seed derived from the cell seed, so every cell stays a pure
    function of ``(x, seed)``.
    """

    rows: int = 10
    cols: int = 10
    n_tokens: int = 8
    copies_per_token: int = 3
    cut_column: Optional[int] = None
    max_rounds: int = 200
    metric: str = "starving_fraction"

    def __call__(self, x: float, seed: int) -> Optional[float]:
        import numpy as np

        from ..core.graphs import grid_column_cut, grid_graph
        from ..tokenmodel.attacks import CutSatiationAttack
        from ..tokenmodel.simulator import run_token_experiment
        from ..tokenmodel.system import TokenSystem, uniform_allocation

        graph = grid_graph(self.rows, self.cols)
        allocation_rng = np.random.default_rng(derive_seed(seed, "token:allocation"))
        allocation = uniform_allocation(
            graph, self.n_tokens, self.copies_per_token, rng=allocation_rng
        )
        system = TokenSystem.complete_collection(
            graph, self.n_tokens, allocation, altruism=float(x)
        )
        attack = (
            CutSatiationAttack(grid_column_cut(self.rows, self.cols, self.cut_column))
            if self.cut_column is not None
            else None
        )
        summary = run_token_experiment(
            system, attack, max_rounds=self.max_rounds, seed=seed
        )
        value = getattr(summary, self.metric)
        return None if value is None else float(value)

    def cache_fingerprint(self) -> Dict[str, Any]:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "n_tokens": self.n_tokens,
            "copies_per_token": self.copies_per_token,
            "cut_column": self.cut_column,
            "max_rounds": self.max_rounds,
            "metric": self.metric,
        }


@dataclass(frozen=True)
class SwarmSweepTask:
    """``run_one(attacker count, seed)`` over the BitTorrent swarm.

    Wraps :func:`repro.bittorrent.swarm.run_swarm_experiment`: the grid
    value is the number of attacker peers mounting the upload-satiation
    attack against the first ``n_targets`` leechers (0 attackers runs
    the clean swarm).
    """

    config: SwarmConfig
    n_targets: int = 10
    slots_per_attacker: int = 4
    max_rounds: int = 400
    metric: str = "mean_completion_round"

    def __call__(self, x: float, seed: int) -> Optional[float]:
        from ..bittorrent.attacks import UploadSatiationAttack
        from ..bittorrent.swarm import run_swarm_experiment

        n_attackers = int(round(x))
        attack = (
            UploadSatiationAttack(
                n_attackers=n_attackers,
                targets=range(self.n_targets),
                slots_per_attacker=self.slots_per_attacker,
            )
            if n_attackers > 0
            else None
        )
        result = run_swarm_experiment(
            self.config, attack=attack, max_rounds=self.max_rounds, seed=seed
        )
        value = getattr(result, self.metric)
        return None if value is None else float(value)

    def cache_fingerprint(self) -> Dict[str, Any]:
        return {
            "config": fingerprint_of(self.config),
            "n_targets": self.n_targets,
            "slots_per_attacker": self.slots_per_attacker,
            "max_rounds": self.max_rounds,
            "metric": self.metric,
        }


def _build_gossip_task(
    fast: bool,
    metric: Optional[str],
    execution: Optional[ExecutionConfig] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
) -> Tuple[SweepTask, str]:
    task = GossipSweepTask(
        scenario=Scenario(
            config=GossipConfig.paper(),
            network=network if network is not None else NetworkModel.ideal(),
            schedule=schedule,
            kind=AttackKind.TRADE,
            rounds=30 if fast else 50,
        ),
        execution=execution if execution is not None else ExecutionConfig(),
        metric=metric or "isolated_fraction",
    )
    return task, "attacker fraction"


def _build_scrip_task(
    fast: bool,
    metric: Optional[str],
    execution: Optional[ExecutionConfig] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
) -> Tuple[SweepTask, str]:
    task = ScripAltruistTask(
        config=ScripConfig.paper(),
        rounds=3000 if fast else 20000,
        warmup=300 if fast else 2000,
        metric=metric or "service_rate",
    )
    return task, "altruists"


def _build_token_task(
    fast: bool,
    metric: Optional[str],
    execution: Optional[ExecutionConfig] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
) -> Tuple[SweepTask, str]:
    task = TokenSweepTask(
        max_rounds=100 if fast else 200,
        metric=metric or "starving_fraction",
    )
    return task, "altruism"


def _build_swarm_task(
    fast: bool,
    metric: Optional[str],
    execution: Optional[ExecutionConfig] = None,
    network: Optional[NetworkModel] = None,
    schedule: str = "rounds",
) -> Tuple[SweepTask, str]:
    task = SwarmSweepTask(
        config=SwarmConfig.small() if fast else SwarmConfig.paper(),
        n_targets=4 if fast else 10,
        metric=metric or "mean_completion_round",
    )
    return task, "attackers"


#: ``lotus-eater sweep-<name>`` builders: ``name -> (fast, metric,
#: execution, network, schedule) -> (task, x-axis label)``.
#: ``execution`` is the gossip :class:`ExecutionConfig` (backend,
#: memory, shards), ``network``/``schedule`` the gossip scenario's
#: asynchronous-network knobs; the other models take them for
#: interface uniformity and ignore them.  Sweep cells already fan out
#: across executor workers, so gossip shards run in-process within
#: each cell (sharding changes the schedule, not the cell's results
#: ownership).
TASK_BUILDERS = {
    "gossip": _build_gossip_task,
    "scrip": _build_scrip_task,
    "token": _build_token_task,
    "swarm": _build_swarm_task,
}
