"""The ``lotus-eater bench`` benchmark: figures timed, summarized, serialized.

Runs the figure suite (fast profile by default) twice — once serially,
once through a parallel :class:`~repro.harness.parallel.SweepExecutor`
— verifies the two produce identical series (the executor's core
guarantee), and writes a machine-readable ``BENCH_summary.json`` that
CI uploads as a workflow artifact.  The summary records wall-clock per
figure, parallel speedup, and the delivery metrics a reviewer needs to
spot a regression without rerunning anything: per-curve usability
crossovers and the delivery at the largest attacker fraction.

It also times the update-store backends head to head
(:func:`run_backend_bench`): one large single-core gossip experiment
(5,000 nodes, 50 rounds by default) on the reference set backend and
on the packed-bitset backend, asserting exact metric parity and
reporting the speedup — the within-a-run scaling axis, complementing
the executor's across-cells axis.  ``lotus-eater bench-diff`` (see
:mod:`~repro.harness.trend`) compares consecutive summaries in CI.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import platform
import shutil
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

from ..bargossip.attacker import AttackKind
from ..bargossip.config import GossipConfig
from ..bargossip.network import NetworkModel
from ..bargossip.scenario import ExecutionConfig, Scenario, run_experiment
from ..bargossip.sharding import (
    ShardPool,
    _init_shard_worker,
    _run_shard_in_worker,
    extract_shard,
    run_shard,
    run_shard_shared,
)
from ..bargossip.simulator import GossipSimulator
from ..bargossip.updates import shared_memory_available
from ..core.metrics import USABILITY_THRESHOLD, TimeSeries
from ..faults import FaultPlan, FaultSpec
from .figures import DEFAULT_FRACTIONS, FAST_FRACTIONS, crossovers, figure1, figure2, figure3
from .parallel import SweepExecutor, resolve_jobs
from .tables import baseline_check

__all__ = [
    "BENCH_FIGURES",
    "SCALE_BENCH_POINTS",
    "run_backend_bench",
    "run_shard_bench",
    "run_memory_bench",
    "run_counters_bench",
    "run_event_bench",
    "run_fault_bench",
    "run_scale_bench",
    "run_bench",
    "render_bench_summary",
    "render_scale_bench",
    "write_bench_summary",
]


def _pool_undersubscribed(workers: int) -> bool:
    """Whether pooled timings on this host are hardware-meaningless.

    With fewer CPUs than workers the pooled pass measures
    oversubscription, not parallel speedup; the bench records the flag
    in the artifact (and the CLI warns) so a 1-CPU container's
    "speedup" is never mistaken for a regression or an improvement.
    """
    return workers > (os.cpu_count() or 1)

#: The figure builders exercised by the benchmark, in report order.
BENCH_FIGURES: Dict[str, Callable[..., Dict[str, TimeSeries]]] = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
}


def _series_payload(curves: Dict[str, TimeSeries]) -> Dict[str, Any]:
    """Delivery metrics for one figure's curves, JSON-ready."""
    return {
        label: {
            "xs": list(series.xs),
            "ys": list(series.ys),
            "crossover_below_threshold": series.crossover_below(),
            "delivery_at_max_fraction": series.ys[-1] if series.ys else None,
        }
        for label, series in curves.items()
    }


def _curves_equal(a: Dict[str, TimeSeries], b: Dict[str, TimeSeries]) -> bool:
    return (
        set(a) == set(b)
        and all(a[k].xs == b[k].xs and a[k].ys == b[k].ys for k in a)
    )


def run_backend_bench(
    n_nodes: int = 5000, rounds: int = 50, seed: int = 0
) -> Dict[str, Any]:
    """Time one large gossip experiment on both store backends.

    Single-core, no attack: a pure measurement of the protocol round
    loop, which is what the bitset backend vectorizes.  The two
    backends are required to agree *exactly* on the delivery metrics
    (the parity suite pins much more; this is the last-line check in
    every bench artifact).

    Deliberately runs at the same 5,000-node scale in both bench
    profiles: this number is the headline within-a-run scaling metric,
    and the CI trend job diffs it across runs — shrinking it under
    ``--fast`` would make consecutive artifacts incomparable.
    """
    seconds: Dict[str, float] = {}
    fractions: Dict[str, Optional[float]] = {}
    scenario = Scenario(
        config=GossipConfig(n_nodes=n_nodes), kind=AttackKind.NONE, rounds=rounds
    )
    for backend in ("sets", "bitset"):
        start = time.perf_counter()
        result = run_experiment(
            scenario, execution=ExecutionConfig(backend=backend), seed=seed
        )
        seconds[backend] = time.perf_counter() - start
        fractions[backend] = result.correct_fraction
    return {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "sets_seconds": seconds["sets"],
        "bitset_seconds": seconds["bitset"],
        "speedup": (
            seconds["sets"] / seconds["bitset"] if seconds["bitset"] > 0 else None
        ),
        "parity_ok": fractions["sets"] == fractions["bitset"],
        "delivery_fraction": fractions["bitset"],
    }


def run_shard_bench(
    n_nodes: int = 50000,
    rounds: int = 50,
    workers: int = 4,
    seed: int = 0,
    backend: str = "bitset",
) -> Dict[str, Any]:
    """Time one huge sharded gossip round sequence, three ways.

    The sharded executor's scaling axis is *within one run*: a single
    50,000-node round sequence partitioned across worker processes.
    Three passes over the identical computation (the sharded schedule
    makes all of them bit-identical, which the returned ``parity_ok``
    asserts on delivery stats and per-node tallies):

    * ``serial_seconds`` — ``shards=1``, the unsharded execution: the
      full-population engine runs the round loop directly.
    * ``inprocess_seconds`` — ``shards=workers`` without a pool:
      measures the slice extract/merge overhead in isolation.
    * ``parallel_seconds`` — ``shards=workers`` on a
      :class:`~repro.bargossip.sharding.ShardPool` of ``workers``
      processes; ``speedup`` is ``serial / parallel``.

    The speedup is hardware-honest: it needs at least ``workers``
    physical cores to exceed 1 (``environment.cpu_count`` in the bench
    summary records what the run actually had), and per-round slice
    serialization bounds it from above — see the README's sharding
    section for the measured breakdown.
    """
    passes: Dict[str, float] = {}
    reference: Optional[GossipSimulator] = None
    parity_ok = True
    for name, shards, use_pool in (
        ("serial_seconds", 1, False),
        ("inprocess_seconds", workers, False),
        ("parallel_seconds", workers, True),
    ):
        # A single worker has no pool to speak of (and the simulator
        # rejects a pool on an unsharded config): all three passes
        # then legitimately measure the same serial execution.
        pool = ShardPool(workers) if use_pool and workers >= 2 else None
        simulator = GossipSimulator(
            GossipConfig(n_nodes=n_nodes),
            seed=seed,
            shard_pool=pool,
            execution=ExecutionConfig(backend=backend, shards=shards),
        )
        start = time.perf_counter()
        for _ in range(rounds):
            simulator.step()
        passes[name] = time.perf_counter() - start
        if pool is not None:
            pool.close()
        if reference is None:
            reference = simulator
        else:
            parity_ok = parity_ok and (
                simulator.stats.delivered == reference.stats.delivered
                and simulator.stats.missed == reference.stats.missed
                and simulator.per_node_delivered == reference.per_node_delivered
                and simulator.per_node_missed == reference.per_node_missed
            )
    return {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "shards": workers,
        "workers": workers,
        "backend": backend,
        **passes,
        "speedup": (
            passes["serial_seconds"] / passes["parallel_seconds"]
            if passes["parallel_seconds"] > 0
            else None
        ),
        "pool_undersubscribed": _pool_undersubscribed(workers),
        "parity_ok": parity_ok,
        "delivery_fraction": reference.delivery_fraction("correct"),
    }


def _time_rounds(
    config: GossipConfig,
    execution: ExecutionConfig,
    rounds: int,
    seed: int,
    pool=None,
):
    """(seconds, simulator-after-close aggregates) of one timed run."""
    simulator = GossipSimulator(
        config, seed=seed, shard_pool=pool, execution=execution
    )
    start = time.perf_counter()
    for _ in range(rounds):
        simulator.step()
    seconds = time.perf_counter() - start
    aggregates = (
        simulator.stats.delivered,
        simulator.stats.missed,
        tuple(simulator.per_node_delivered),
        tuple(simulator.per_node_missed),
        simulator.delivery_fraction("correct"),
    )
    simulator.close()
    return seconds, aggregates


def _round_traffic_bytes(
    config: GossipConfig,
    execution: ExecutionConfig,
    workers: int,
    seed: int,
    warm_rounds: int = 2,
) -> Dict[str, int]:
    """Measured pickled payload of one round's shard dispatch.

    Builds one simulator, warms it past the first broadcasts, then
    extracts (and, for byte-accounting, executes in-process) exactly
    what a pooled round would ship.  This is the artifact's evidence
    that ``memory="shared"`` cuts per-round cross-process traffic from
    O(nodes) rows to O(counters): the states/outcomes are the literal
    objects ``ShardPool`` would pickle.
    """
    simulator = GossipSimulator(
        config, seed=seed, execution=execution.replace(shards=workers)
    )
    try:
        for _ in range(warm_rounds):
            simulator.step()
        round_now = simulator._round
        simulator._maybe_rotate_targets(round_now)
        simulator._broadcast(round_now)
        simulator._attack_out_of_band()
        shards = [
            cells
            for cells in simulator._partners.shard_cells(round_now, workers)
            if cells
        ]
        state_bytes = 0
        outcome_bytes = 0
        if execution.memory == "shared":
            for phase in ("exchange", "push"):
                states = [
                    extract_shard(simulator, cells, round_now, phase=phase)
                    for cells in shards
                ]
                outcomes = [
                    run_shard_shared(simulator._shard_static, state, simulator._pool)
                    for state in states
                ]
                state_bytes += sum(len(pickle.dumps(s)) for s in states)
                outcome_bytes += sum(len(pickle.dumps(o)) for o in outcomes)
        else:
            states = [
                extract_shard(simulator, cells, round_now) for cells in shards
            ]
            outcomes = [
                run_shard(simulator._shard_static, state) for state in states
            ]
            state_bytes = sum(len(pickle.dumps(s)) for s in states)
            outcome_bytes = sum(len(pickle.dumps(o)) for o in outcomes)
        return {"state_bytes": state_bytes, "outcome_bytes": outcome_bytes}
    finally:
        simulator.close()


def run_memory_bench(
    n_nodes: int = 20000,
    rounds: int = 30,
    workers: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """Time the population-store memory layouts head to head.

    One no-attack gossip run per pass, all over the sharded schedule so
    every pass computes the bit-identical trace (asserted on delivery
    stats and per-node tallies):

    * ``serial_*`` — ``shards=1``: the full-population engine, per-pair
      dispatch on the bitset backend, batched word sweeps on words.
    * ``inprocess_*`` — ``shards=workers``, no pool: slice
      extract/execute/merge overhead in isolation.
    * ``pooled_*`` — ``shards=workers`` on a worker-process pool;
      ``heap`` ships rows per round, ``shared`` mutates a shared-memory
      block in place and ships only counters.

    ``round_traffic`` records the measured pickled bytes of one
    round's dispatch for the pooled paths — the O(nodes)-rows versus
    O(counters) comparison the shared layout exists for.  Shared
    passes are skipped (``None`` timings, ``shared_available`` False)
    where no shared-memory segment can be created.
    """
    shared_ok = shared_memory_available()
    passes = (
        ("serial_bitset_seconds", "bitset", "heap", 1, False),
        ("serial_words_seconds", "words", "heap", 1, False),
        ("inprocess_bitset_seconds", "bitset", "heap", workers, False),
        ("inprocess_words_seconds", "words", "heap", workers, False),
        ("pooled_bitset_seconds", "bitset", "heap", workers, True),
        ("pooled_words_heap_seconds", "words", "heap", workers, True),
        ("pooled_words_shared_seconds", "words", "shared", workers, True),
    )
    seconds: Dict[str, Optional[float]] = {}
    reference = None
    parity_ok = True
    delivery = None
    for name, backend, memory, shards, use_pool in passes:
        if memory == "shared" and not shared_ok:
            seconds[name] = None
            continue
        execution = ExecutionConfig(backend=backend, memory=memory, shards=shards)
        pool = ShardPool(workers) if use_pool and workers >= 2 else None
        try:
            elapsed, aggregates = _time_rounds(
                GossipConfig(n_nodes=n_nodes), execution, rounds, seed, pool=pool
            )
        finally:
            if pool is not None:
                pool.close()
        seconds[name] = elapsed
        if reference is None:
            reference = aggregates
            delivery = aggregates[-1]
        else:
            parity_ok = parity_ok and aggregates == reference

    def _ratio(numerator: Optional[float], denominator: Optional[float]):
        if numerator is None or denominator is None or denominator <= 0:
            return None
        return numerator / denominator

    traffic: Dict[str, Any] = {
        "words_heap": _round_traffic_bytes(
            GossipConfig(n_nodes=n_nodes),
            ExecutionConfig(backend="words"),
            workers,
            seed,
        )
    }
    if shared_ok:
        traffic["words_shared"] = _round_traffic_bytes(
            GossipConfig(n_nodes=n_nodes),
            ExecutionConfig(backend="words", memory="shared"),
            workers,
            seed,
        )
        heap_total = sum(traffic["words_heap"].values())
        shared_total = sum(traffic["words_shared"].values())
        traffic["heap_over_shared"] = _ratio(heap_total, shared_total)
    return {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "workers": workers,
        "pool_undersubscribed": _pool_undersubscribed(workers),
        "shared_available": shared_ok,
        **seconds,
        "serial_words_vs_bitset_speedup": _ratio(
            seconds["serial_bitset_seconds"], seconds["serial_words_seconds"]
        ),
        "inprocess_words_vs_bitset_speedup": _ratio(
            seconds["inprocess_bitset_seconds"], seconds["inprocess_words_seconds"]
        ),
        "pooled_shared_speedup_vs_serial": _ratio(
            seconds["serial_words_seconds"], seconds["pooled_words_shared_seconds"]
        ),
        "round_traffic": traffic,
        "parity_ok": parity_ok,
        "delivery_fraction": delivery,
    }


def run_counters_bench(
    n_nodes: int = 20000,
    rounds: int = 10,
    workers: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """Measure what the columnar counter refactor changed, per round.

    Two numbers, both deliberately at the ``memory_bench`` headline
    scale (20,000 nodes) so consecutive artifacts — and the PR-4
    baseline — stay directly comparable:

    * ``words_round_seconds`` / ``bitset_round_seconds`` — wall-clock
      per round of one serial no-attack run on the sharded schedule
      (``shards=1``).  The words backend's phases are whole-population
      sweeps whose counter updates are scatter-adds on the columnar
      matrix; the bitset backend keeps the per-pair scalar dispatch and
      therefore pays the column-view tax on every interaction — the
      recorded ratio is the honest price of the trade.
    * ``dispatch`` — the measured pickled bytes of one pooled round's
      shard messages (states out, outcomes back) on the words backend,
      heap versus shared.  Heap outcomes now carry sparse narrowed
      counter columns instead of per-node tuples; shared outcomes carry
      no counter payload at all (workers bump the segment's columns in
      place), so ``outcome_bytes`` is where the lean-delta re-cut
      shows up.

    Shared rows are skipped (``None``) where no shared-memory segment
    can be created.
    """
    per_round: Dict[str, Optional[float]] = {}
    reference = None
    parity_ok = True
    delivery = None
    for name, backend in (
        ("words_round_seconds", "words"),
        ("bitset_round_seconds", "bitset"),
    ):
        elapsed, aggregates = _time_rounds(
            GossipConfig(n_nodes=n_nodes),
            ExecutionConfig(backend=backend, shards=1),
            rounds,
            seed,
        )
        per_round[name] = elapsed / rounds
        if reference is None:
            reference = aggregates
            delivery = aggregates[-1]
        else:
            parity_ok = parity_ok and aggregates == reference

    shared_ok = shared_memory_available()
    dispatch: Dict[str, Any] = {
        "words_heap": _round_traffic_bytes(
            GossipConfig(n_nodes=n_nodes),
            ExecutionConfig(backend="words"),
            workers,
            seed,
        ),
        "words_shared": (
            _round_traffic_bytes(
                GossipConfig(n_nodes=n_nodes),
                ExecutionConfig(backend="words", memory="shared"),
                workers,
                seed,
            )
            if shared_ok
            else None
        ),
    }
    if shared_ok:
        heap_out = dispatch["words_heap"]["outcome_bytes"]
        shared_out = dispatch["words_shared"]["outcome_bytes"]
        dispatch["outcome_bytes_heap_over_shared"] = (
            heap_out / shared_out if shared_out else None
        )
    return {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "workers": workers,
        "shared_available": shared_ok,
        **per_round,
        "words_vs_bitset_round_speedup": (
            per_round["bitset_round_seconds"] / per_round["words_round_seconds"]
            if per_round["words_round_seconds"]
            else None
        ),
        "dispatch": dispatch,
        "parity_ok": parity_ok,
        "delivery_fraction": delivery,
    }


#: The network points the event bench sweeps, from the ideal network
#: (the parity anchor) through progressively harsher asynchrony.  Rates
#: are in round units: mean latency of 0.3 rounds, 5% message loss,
#: and per-node Poisson churn (leave 0.002/round, rejoin 0.05/round).
EVENT_BENCH_POINTS: Dict[str, NetworkModel] = {
    "ideal": NetworkModel.ideal(),
    "latency": NetworkModel(latency_kind="exponential", latency_mean=0.3),
    "latency_loss": NetworkModel(
        latency_kind="exponential", latency_mean=0.3, loss_rate=0.05
    ),
    "latency_loss_churn": NetworkModel(
        latency_kind="exponential",
        latency_mean=0.3,
        loss_rate=0.05,
        churn_leave_rate=0.002,
        churn_join_rate=0.05,
    ),
}


def run_event_bench(
    n_nodes: int = 20000,
    rounds: int = 25,
    seed: int = 0,
    backend: str = "words",
) -> Dict[str, Any]:
    """Time the virtual-time event engine across network harshness points.

    One no-attack run per :data:`EVENT_BENCH_POINTS` entry, all on the
    event schedule, plus one classic-rounds reference run.  Two things
    come out of it:

    * ``parity_ok`` — the ideal-network event run must reproduce the
      classic synchronous schedule's delivery metrics exactly (the
      schedule-parity suite pins the full trace; this is the bench
      artifact's last-line check).
    * per-point ``time_to_90_delivery`` / ``reached_fraction`` — the
      virtual-time delivery metrics only the event engine can measure:
      how long an update takes to reach 90% of the live population,
      and what fraction of measured updates ever get there, as latency,
      loss and churn are layered on.

    Like the memory bench this runs at the 20,000-node headline scale
    in both profiles so consecutive CI artifacts stay comparable.

    ``rounds`` must comfortably exceed twice the update lifetime:
    measurement starts at round ``update_lifetime`` (the warm-up) and
    the first measured update only expires — and is counted — a full
    lifetime after that, so shorter runs report no delivery at all.
    """
    config = GossipConfig(n_nodes=n_nodes)
    execution = ExecutionConfig(backend=backend)
    start = time.perf_counter()
    classic = run_experiment(
        Scenario(config=config, kind=AttackKind.NONE, rounds=rounds),
        execution=execution,
        seed=seed,
    )
    classic_seconds = time.perf_counter() - start
    points: Dict[str, Any] = {}
    parity_ok = True
    for name, network in EVENT_BENCH_POINTS.items():
        scenario = Scenario(
            config=config,
            network=network,
            schedule="event",
            kind=AttackKind.NONE,
            rounds=rounds,
        )
        start = time.perf_counter()
        result = run_experiment(scenario, execution=execution, seed=seed)
        elapsed = time.perf_counter() - start
        if name == "ideal":
            # Requiring a measured fraction keeps the check honest: a
            # run too short to record any delivery would otherwise
            # compare None against None and pass vacuously.
            parity_ok = (
                classic.correct_fraction is not None
                and result.isolated_fraction == classic.isolated_fraction
                and result.satiated_fraction == classic.satiated_fraction
                and result.correct_fraction == classic.correct_fraction
            )
        points[name] = {
            "seconds": elapsed,
            "network": network.to_dict(),
            "correct_fraction": result.correct_fraction,
            "time_to_90_delivery": result.time_to_90_delivery,
            "delivery_reached_fraction": result.delivery_reached_fraction,
            "network_stats": result.network_stats,
        }
    return {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "backend": backend,
        "rounds_seconds": classic_seconds,
        "ideal_seconds": points["ideal"]["seconds"],
        "latency_loss_churn_seconds": points["latency_loss_churn"]["seconds"],
        "event_overhead_vs_rounds": (
            points["ideal"]["seconds"] / classic_seconds
            if classic_seconds > 0
            else None
        ),
        "points": points,
        "parity_ok": parity_ok,
        "delivery_fraction": classic.correct_fraction,
    }


class _UnsupervisedShardPool:
    """A raw ``multiprocessing.Pool`` with the ShardPool interface.

    Exists only as the fault bench's baseline: the pre-supervision
    execution path (plain ``Pool.map``, no liveness checks, no
    deadlines, no retry bookkeeping), so ``supervised_overhead_ratio``
    measures exactly what the supervision layer costs when nothing
    fails.  Heap mode only — never use this outside the bench; it hangs
    forever if a worker dies.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._pool = None
        self._static = None

    def run(self, static, states):
        if self._pool is None or self._static is not static:
            self.close()
            self._pool = multiprocessing.Pool(
                processes=self.workers,
                initializer=_init_shard_worker,
                initargs=(static, None),
            )
            self._static = static
        return self._pool.map(_run_shard_in_worker, states)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._static = None

    def terminate(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._static = None


def run_fault_bench(
    n_nodes: int = 20000,
    rounds: int = 10,
    workers: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """Measure what fault tolerance costs, and what recovery costs.

    Three timed passes of the same sharded no-attack run (words
    backend, 20,000-node headline scale), asserting bit-identical
    delivery aggregates across all of them:

    * ``unsupervised_seconds`` — heap-mode shards on a raw
      ``multiprocessing.Pool`` (the pre-supervision execution path);
    * ``supervised_seconds`` — the same run on the supervised
      :class:`ShardPool`; ``supervised_overhead_ratio`` is the price of
      liveness checks, deadlines and retry bookkeeping when nothing
      fails (target: ≤ 1.02);
    * ``faulted_seconds`` — shared-memory mode (heap where no segment
      is available) with a :class:`~repro.faults.FaultPlan` killing one
      worker mid-round; ``recovery_seconds`` is the wall-clock the
      crash + respawn + snapshot-restore + round re-run added over the
      matching clean pass.

    ``parity_ok`` covers every pass against the first — the bench-level
    restatement of the chaos suite's bit-exactness pin.
    """
    config = GossipConfig(n_nodes=n_nodes)
    heap = ExecutionConfig(backend="words", memory="heap", shards=workers)
    reference = None
    parity_ok = True

    def _check(aggregates) -> None:
        nonlocal reference, parity_ok
        if reference is None:
            reference = aggregates
        else:
            parity_ok = parity_ok and aggregates == reference

    plain = _UnsupervisedShardPool(workers)
    try:
        unsupervised_seconds, aggregates = _time_rounds(
            config, heap, rounds, seed, pool=plain
        )
    finally:
        plain.close()
    _check(aggregates)

    supervised = ShardPool(workers)
    try:
        supervised_seconds, aggregates = _time_rounds(
            config, heap, rounds, seed, pool=supervised
        )
    finally:
        supervised.close()
    _check(aggregates)

    shared_ok = shared_memory_available()
    faulted_execution = (
        ExecutionConfig(backend="words", memory="shared", shards=workers)
        if shared_ok
        else heap
    )
    clean_pool = ShardPool(workers)
    try:
        clean_seconds, aggregates = _time_rounds(
            config, faulted_execution, rounds, seed, pool=clean_pool
        )
    finally:
        clean_pool.close()
    _check(aggregates)

    token_dir = tempfile.mkdtemp(prefix="lotus-fault-bench-")
    site = "worker:shard-shared" if shared_ok else "worker:shard"
    plan = FaultPlan(
        seed=seed,
        specs=(FaultSpec(site=site, kind="crash", when=2),),
        token_dir=token_dir,
    )
    faulted_pool = ShardPool(workers, fault_plan=plan)
    try:
        faulted_seconds, aggregates = _time_rounds(
            config, faulted_execution, rounds, seed, pool=faulted_pool
        )
    finally:
        faulted_pool.close()
        shutil.rmtree(token_dir, ignore_errors=True)
    _check(aggregates)

    return {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "workers": workers,
        "pool_undersubscribed": _pool_undersubscribed(workers),
        "shared_available": shared_ok,
        "faulted_memory": faulted_execution.memory,
        "unsupervised_seconds": unsupervised_seconds,
        "supervised_seconds": supervised_seconds,
        "supervised_overhead_ratio": (
            supervised_seconds / unsupervised_seconds
            if unsupervised_seconds > 0
            else None
        ),
        "clean_seconds": clean_seconds,
        "faulted_seconds": faulted_seconds,
        "recovery_seconds": max(0.0, faulted_seconds - clean_seconds),
        "parity_ok": parity_ok,
        "delivery_fraction": reference[-1] if reference else None,
    }


#: Population sizes the scale bench sweeps (the fast profile keeps only
#: the first).  The top point is the tentpole claim: one full figure-1
#: trade configuration at a million nodes on one box.
SCALE_BENCH_POINTS = (100_000, 1_000_000)

#: Attacker fraction of the scale bench's figure-1 trade point.
SCALE_BENCH_ATTACKER_FRACTION = 0.2


def _scale_point_worker(n_nodes: int, rounds: int, seed: int) -> Dict[str, Any]:
    """Measure one scale point; run in a fresh process for honest RSS.

    One figure-1 trade configuration (paper parameters, 20% attacker
    coalition) on the serial words backend, timed over ``rounds``
    steady-state rounds after one warm-up round.  Returns the
    per-round wall clock, the flat-buffer byte budget and the
    process-lifetime peak RSS — which is why isolation matters:
    ``ru_maxrss`` never decreases, so points sharing a process would
    all report the largest point's peak.
    """
    import resource

    from ..bargossip.attacker import AttackerCoalition
    from ..bargossip.updates import word_popcounts
    from ..core.rng import RngStreams

    config = GossipConfig.paper().replace(n_nodes=n_nodes)
    streams = RngStreams(seed)
    coalition = AttackerCoalition.build(
        AttackKind.TRADE,
        n_nodes=n_nodes,
        attacker_fraction=SCALE_BENCH_ATTACKER_FRACTION,
        rng=streams.get("coalition"),
    )
    init_start = time.perf_counter()
    simulator = GossipSimulator(
        config,
        attack=coalition,
        seed=seed,
        execution=ExecutionConfig(backend="words", shards=1),
    )
    init_seconds = time.perf_counter() - init_start
    simulator.step()  # warm-up: first broadcast and store growth
    start = time.perf_counter()
    for _ in range(rounds):
        simulator.step()
    round_ms = (time.perf_counter() - start) / rounds * 1000.0
    memory = simulator.memory_breakdown()
    point = {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "init_seconds": init_seconds,
        "round_ms": round_ms,
        "memory": memory,
        "bytes_per_node": memory["bytes_per_node"],
        "peak_rss_bytes": (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        ),
        "delivery_fraction": simulator.delivery_fraction("correct"),
        # Determinism fingerprint: the live-window have bits and the
        # counter matrix summarize every interaction the run made, so
        # two runs agreeing here agree on the whole trace.
        "aggregates": [
            int(word_popcounts(simulator._pool.have_words).sum()),
            int(simulator.population.counters.sum()),
            simulator.attack.updates_served,
        ],
    }
    simulator.close()
    return point


def run_scale_bench(
    points=SCALE_BENCH_POINTS,
    rounds: int = 12,
    seed: int = 0,
    isolate: bool = True,
) -> Dict[str, Any]:
    """Measure figure-1 rounds at population scale, point by point.

    Each point runs :func:`_scale_point_worker` in its own spawned
    subprocess (``isolate=False`` keeps everything in-process — the
    test-suite escape hatch, at the cost of peak-RSS figures that
    accumulate across points and inherit the parent).  The smallest
    point runs twice; ``parity_ok`` asserts the two runs' delivery
    aggregates are identical — the scale sweep's determinism check.
    """
    context = multiprocessing.get_context("spawn") if isolate else None

    def _measure(n_nodes: int) -> Dict[str, Any]:
        if context is None:
            return _scale_point_worker(n_nodes, rounds, seed)
        with context.Pool(1) as pool:
            return pool.apply(_scale_point_worker, (n_nodes, rounds, seed))

    results = {str(n): _measure(n) for n in sorted(points)}
    smallest = str(min(points))
    rerun = _measure(min(points))
    parity_ok = results[smallest]["aggregates"] == rerun["aggregates"]
    return {
        "rounds": rounds,
        "attacker_fraction": SCALE_BENCH_ATTACKER_FRACTION,
        "backend": "words",
        "isolated": isolate,
        "points": results,
        "parity_ok": parity_ok,
    }


def run_bench(
    fast: bool = True,
    jobs: Optional[int] = None,
    repetitions: int = 1,
    root_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    shard_workers: int = 4,
    shard_nodes: int = 50000,
    shard_rounds: int = 50,
    memory_nodes: int = 20000,
    memory_rounds: int = 30,
    scale_points=None,
    scale_rounds: int = 12,
    scale_isolate: bool = True,
) -> Dict[str, Any]:
    """Run the benchmark suite and return the summary dictionary.

    ``executor`` supplies the parallel pass; when None, a pool-backed
    executor with ``jobs`` workers is built (and closed before
    returning).  Pass an *uncached* executor — the serial reference
    pass always runs uncached on one core, so a cache-backed parallel
    pass would report cache speedup, not executor speedup (the CLI's
    ``bench`` command always benches uncached for this reason).

    ``shard_workers`` / ``shard_nodes`` / ``shard_rounds`` parameterize
    the ``shard_bench`` section (:func:`run_shard_bench`), and
    ``memory_nodes`` / ``memory_rounds`` the ``memory_bench`` section
    (:func:`run_memory_bench`); like the backend bench these
    deliberately run at the same headline scale in both profiles so
    consecutive CI artifacts stay comparable.

    ``scale_points`` parameterizes the ``scale_bench`` section
    (:func:`run_scale_bench`); None keeps the tracked defaults — the
    10^5 point under ``--fast``, 10^5 and 10^6 on the full profile —
    so trend baselines stay comparable at each point independently.
    """
    if scale_points is None:
        scale_points = SCALE_BENCH_POINTS[:1] if fast else SCALE_BENCH_POINTS
    fractions = FAST_FRACTIONS if fast else DEFAULT_FRACTIONS
    rounds = 30 if fast else 50
    own_executor = executor is None
    if executor is None:
        executor = SweepExecutor(jobs=resolve_jobs(jobs))
    executor.warm_up()  # keep pool spin-up out of figure1's timing

    figures: Dict[str, Any] = {}
    total_serial = 0.0
    total_parallel = 0.0
    for name, builder in BENCH_FIGURES.items():
        serial_start = time.perf_counter()
        serial_curves = builder(
            fractions=fractions,
            rounds=rounds,
            repetitions=repetitions,
            root_seed=root_seed,
        )
        serial_seconds = time.perf_counter() - serial_start

        parallel_start = time.perf_counter()
        parallel_curves = builder(
            fractions=fractions,
            rounds=rounds,
            repetitions=repetitions,
            root_seed=root_seed,
            executor=executor,
        )
        parallel_seconds = time.perf_counter() - parallel_start

        total_serial += serial_seconds
        total_parallel += parallel_seconds
        figures[name] = {
            "wall_clock_serial_s": serial_seconds,
            "wall_clock_parallel_s": parallel_seconds,
            "speedup_vs_serial": (
                serial_seconds / parallel_seconds if parallel_seconds > 0 else None
            ),
            "parallel_matches_serial": _curves_equal(serial_curves, parallel_curves),
            "crossovers": crossovers(parallel_curves),
            "curves": _series_payload(parallel_curves),
        }

    baseline = baseline_check(rounds=rounds, seed=root_seed, executor=executor)
    backend_bench = run_backend_bench(seed=root_seed)
    shard_bench = run_shard_bench(
        n_nodes=shard_nodes,
        rounds=shard_rounds,
        workers=shard_workers,
        seed=root_seed,
    )
    memory_bench = run_memory_bench(
        n_nodes=memory_nodes,
        rounds=memory_rounds,
        workers=shard_workers,
        seed=root_seed,
    )
    counters_bench = run_counters_bench(
        n_nodes=memory_nodes,
        workers=shard_workers,
        seed=root_seed,
    )
    event_bench = run_event_bench(n_nodes=memory_nodes, seed=root_seed)
    fault_bench = run_fault_bench(
        n_nodes=memory_nodes,
        workers=shard_workers,
        seed=root_seed,
    )
    scale_bench = run_scale_bench(
        points=scale_points,
        rounds=scale_rounds,
        seed=root_seed,
        isolate=scale_isolate,
    )
    executor_stats = executor.stats()
    executor_stats["failures"] = executor.failure_records()
    if own_executor:
        executor.close()
    return {
        "profile": "fast" if fast else "full",
        "fractions": list(fractions),
        "rounds": rounds,
        "repetitions": repetitions,
        "root_seed": root_seed,
        "usability_threshold": USABILITY_THRESHOLD,
        "baseline_delivery_fraction": baseline["delivery_fraction"],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "executor": executor_stats,
        "backend_bench": backend_bench,
        "shard_bench": shard_bench,
        "memory_bench": memory_bench,
        "counters_bench": counters_bench,
        "event_bench": event_bench,
        "fault_bench": fault_bench,
        "scale_bench": scale_bench,
        "figures": figures,
        "totals": {
            "wall_clock_serial_s": total_serial,
            "wall_clock_parallel_s": total_parallel,
            "speedup_vs_serial": (
                total_serial / total_parallel if total_parallel > 0 else None
            ),
        },
    }


def render_bench_summary(summary: Dict[str, Any]) -> str:
    """A short human-readable digest of :func:`run_bench` output."""
    lines = [
        f"profile={summary['profile']} jobs={summary['executor']['jobs']} "
        f"rounds={summary['rounds']} repetitions={summary['repetitions']}",
    ]
    for name, report in summary["figures"].items():
        speedup = report["speedup_vs_serial"]
        match = "ok" if report["parallel_matches_serial"] else "MISMATCH"
        lines.append(
            f"{name}: serial {report['wall_clock_serial_s']:.2f}s, "
            f"parallel {report['wall_clock_parallel_s']:.2f}s "
            f"({speedup:.2f}x, parity {match})"
        )
    totals = summary["totals"]
    lines.append(
        f"total: serial {totals['wall_clock_serial_s']:.2f}s, "
        f"parallel {totals['wall_clock_parallel_s']:.2f}s "
        f"({totals['speedup_vs_serial']:.2f}x)"
    )
    lines.append(
        f"baseline delivery {summary['baseline_delivery_fraction']:.3f} "
        f"(threshold {summary['usability_threshold']:.2f}); "
        f"cells executed {summary['executor']['cells_executed']}, "
        f"cached {summary['executor']['cells_cached']}"
    )
    backend = summary.get("backend_bench")
    if backend:
        parity = "ok" if backend["parity_ok"] else "MISMATCH"
        lines.append(
            f"backend ({backend['n_nodes']} nodes, {backend['rounds']} rounds, "
            f"single core): sets {backend['sets_seconds']:.2f}s, "
            f"bitset {backend['bitset_seconds']:.2f}s "
            f"({backend['speedup']:.2f}x, parity {parity})"
        )
    shard = summary.get("shard_bench")
    if shard:
        parity = "ok" if shard["parity_ok"] else "MISMATCH"
        undersubscribed = (
            ", POOL UNDERSUBSCRIBED" if shard.get("pool_undersubscribed") else ""
        )
        lines.append(
            f"shards ({shard['n_nodes']} nodes, {shard['rounds']} rounds, "
            f"{shard['workers']} workers): serial {shard['serial_seconds']:.2f}s, "
            f"in-process {shard['inprocess_seconds']:.2f}s, "
            f"parallel {shard['parallel_seconds']:.2f}s "
            f"({shard['speedup']:.2f}x, parity {parity}{undersubscribed})"
        )
    memory = summary.get("memory_bench")
    if memory:
        parity = "ok" if memory["parity_ok"] else "MISMATCH"
        undersubscribed = (
            ", POOL UNDERSUBSCRIBED" if memory.get("pool_undersubscribed") else ""
        )
        lines.append(
            f"memory ({memory['n_nodes']} nodes, {memory['rounds']} rounds, "
            f"{memory['workers']} workers): "
            f"serial bitset {memory['serial_bitset_seconds']:.2f}s, "
            f"words {memory['serial_words_seconds']:.2f}s; "
            f"in-process bitset {memory['inprocess_bitset_seconds']:.2f}s, "
            f"words {memory['inprocess_words_seconds']:.2f}s "
            f"(parity {parity}{undersubscribed})"
        )
        shared_seconds = memory.get("pooled_words_shared_seconds")
        heap_seconds = memory.get("pooled_words_heap_seconds")
        if shared_seconds is not None and heap_seconds is not None:
            traffic = memory.get("round_traffic", {})
            heap_traffic = traffic.get("words_heap", {})
            shared_traffic = traffic.get("words_shared", {})
            heap_bytes = sum(heap_traffic.values())
            shared_bytes = sum(shared_traffic.values())
            lines.append(
                f"  pooled: heap rows {heap_seconds:.2f}s "
                f"({heap_bytes} B/round), shared in-place "
                f"{shared_seconds:.2f}s ({shared_bytes} B/round)"
            )
        elif not memory.get("shared_available", True):
            lines.append("  pooled shared: skipped (no shared memory available)")
    counters = summary.get("counters_bench")
    if counters:
        parity = "ok" if counters["parity_ok"] else "MISMATCH"
        lines.append(
            f"counters ({counters['n_nodes']} nodes, serial shards=1): "
            f"words {counters['words_round_seconds'] * 1000:.0f} ms/round, "
            f"bitset {counters['bitset_round_seconds'] * 1000:.0f} ms/round "
            f"({counters['words_vs_bitset_round_speedup']:.2f}x, "
            f"parity {parity})"
        )
        dispatch = counters.get("dispatch", {})
        heap = dispatch.get("words_heap") or {}
        shared = dispatch.get("words_shared")
        if shared is not None:
            ratio = dispatch.get("outcome_bytes_heap_over_shared")
            ratio_text = f" ({ratio:.2f}x leaner)" if ratio else ""
            lines.append(
                f"  dispatch/round: heap {heap.get('outcome_bytes', 0)} B "
                f"out, shared {shared['outcome_bytes']} B out{ratio_text}"
            )
        else:
            lines.append(
                f"  dispatch/round: heap {heap.get('outcome_bytes', 0)} B out "
                "(shared skipped: no shared memory available)"
            )
    event = summary.get("event_bench")
    if event:
        parity = "ok" if event["parity_ok"] else "MISMATCH"
        lines.append(
            f"event ({event['n_nodes']} nodes, {event['rounds']} rounds, "
            f"{event['backend']} backend): classic rounds "
            f"{event['rounds_seconds']:.2f}s, event ideal "
            f"{event['ideal_seconds']:.2f}s "
            f"({event['event_overhead_vs_rounds']:.2f}x, parity {parity})"
        )
        for name, point in event["points"].items():
            if name == "ideal":
                continue
            t90 = point["time_to_90_delivery"]
            t90_text = f"{t90:.2f}" if t90 is not None else "n/a"
            reached = point["delivery_reached_fraction"]
            reached_text = f"{reached:.3f}" if reached is not None else "n/a"
            delivery = point["correct_fraction"]
            delivery_text = f"{delivery:.3f}" if delivery is not None else "n/a"
            lines.append(
                f"  {name}: {point['seconds']:.2f}s, "
                f"t90 {t90_text} rounds, reached {reached_text}, "
                f"delivery {delivery_text}"
            )
    scale = summary.get("scale_bench")
    if scale:
        lines.extend(render_scale_bench(scale))
    fault = summary.get("fault_bench")
    if fault:
        parity = "ok" if fault["parity_ok"] else "MISMATCH"
        undersubscribed = (
            ", POOL UNDERSUBSCRIBED" if fault.get("pool_undersubscribed") else ""
        )
        overhead = fault["supervised_overhead_ratio"]
        overhead_text = f"{overhead:.3f}x" if overhead is not None else "n/a"
        lines.append(
            f"fault ({fault['n_nodes']} nodes, {fault['rounds']} rounds, "
            f"{fault['workers']} workers): unsupervised "
            f"{fault['unsupervised_seconds']:.2f}s, supervised "
            f"{fault['supervised_seconds']:.2f}s (overhead "
            f"{overhead_text}, parity {parity}{undersubscribed})"
        )
        lines.append(
            f"  one worker kill ({fault['faulted_memory']} memory): clean "
            f"{fault['clean_seconds']:.2f}s, faulted "
            f"{fault['faulted_seconds']:.2f}s (recovery "
            f"{fault['recovery_seconds']:.2f}s)"
        )
    return "\n".join(lines)


def render_scale_bench(scale: Dict[str, Any]) -> List[str]:
    """The ``scale_bench`` section's digest lines (shared with the
    standalone ``lotus-eater scale-bench`` subcommand)."""
    parity = "ok" if scale["parity_ok"] else "MISMATCH"
    isolation = "" if scale.get("isolated", True) else ", IN-PROCESS RSS"
    lines = [
        f"scale (figure-1 trade, words backend, {scale['rounds']} "
        f"rounds/point): determinism {parity}{isolation}"
    ]
    for key in sorted(scale["points"], key=int):
        point = scale["points"][key]
        delivery = point["delivery_fraction"]
        delivery_text = f"{delivery:.3f}" if delivery is not None else "n/a"
        lines.append(
            f"  {int(key):,} nodes: {point['round_ms']:.0f} ms/round, "
            f"{point['bytes_per_node']} B/node flat state, peak RSS "
            f"{point['peak_rss_bytes'] / 1e6:.0f} MB, "
            f"delivery {delivery_text}"
        )
    return lines


def write_bench_summary(summary: Dict[str, Any], path: str) -> str:
    """Serialize ``summary`` to ``path`` as indented JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
