"""Experiment harness: sweeps, parallel execution, caching, rendering.

The harness layers, bottom up:

* :mod:`~repro.harness.cache` — content-addressed on-disk store for
  sweep cell results;
* :mod:`~repro.harness.parallel` — :class:`SweepExecutor`, fanning
  (grid-point, seed) cells across a process pool with deterministic
  reduction;
* :mod:`~repro.harness.tasks` — picklable :class:`SweepTask` specs for
  every model (gossip, scrip, token, swarm);
* :mod:`~repro.harness.sweep` — grid × repetitions aggregation;
* :mod:`~repro.harness.figures` / :mod:`~repro.harness.tables` —
  the paper's figures and Table 1;
* :mod:`~repro.harness.bench` — the timed benchmark suite behind
  ``lotus-eater bench``;
* :mod:`~repro.harness.ascii` / :mod:`~repro.harness.cli` — rendering
  and the ``lotus-eater`` entry point.
"""

from .ascii import render_chart, render_series_table, render_table
from .bench import run_bench, render_bench_summary, write_bench_summary
from .cache import CellRecord, ResultCache, cell_key, fingerprint_of
from .figures import (
    DEFAULT_FRACTIONS,
    FAST_FRACTIONS,
    GossipSweepTask,
    attack_curve,
    crossovers,
    figure1,
    figure2,
    figure3,
)
from .parallel import SweepCell, SweepExecutor, resolve_jobs
from .sweep import SweepPoint, sweep, sweep_series
from .tables import baseline_check, render_table1, table1_rows
from .tasks import (
    ScripAltruistTask,
    SwarmSweepTask,
    SweepTask,
    TokenSweepTask,
)

__all__ = [
    "attack_curve",
    "figure1",
    "figure2",
    "figure3",
    "crossovers",
    "DEFAULT_FRACTIONS",
    "FAST_FRACTIONS",
    "GossipSweepTask",
    "SweepTask",
    "ScripAltruistTask",
    "TokenSweepTask",
    "SwarmSweepTask",
    "sweep",
    "sweep_series",
    "SweepPoint",
    "SweepCell",
    "SweepExecutor",
    "resolve_jobs",
    "ResultCache",
    "CellRecord",
    "cell_key",
    "fingerprint_of",
    "run_bench",
    "render_bench_summary",
    "write_bench_summary",
    "table1_rows",
    "render_table1",
    "baseline_check",
    "render_table",
    "render_series_table",
    "render_chart",
]
