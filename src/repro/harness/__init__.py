"""Experiment harness: sweeps, figure/table regeneration, rendering."""

from .ascii import render_chart, render_series_table, render_table
from .figures import (
    DEFAULT_FRACTIONS,
    FAST_FRACTIONS,
    attack_curve,
    crossovers,
    figure1,
    figure2,
    figure3,
)
from .sweep import SweepPoint, sweep, sweep_series
from .tables import baseline_check, render_table1, table1_rows

__all__ = [
    "attack_curve",
    "figure1",
    "figure2",
    "figure3",
    "crossovers",
    "DEFAULT_FRACTIONS",
    "FAST_FRACTIONS",
    "sweep",
    "sweep_series",
    "SweepPoint",
    "table1_rows",
    "render_table1",
    "baseline_check",
    "render_table",
    "render_series_table",
    "render_chart",
]
