"""Content-addressed on-disk store for sweep cell results.

Every cell of a sweep — one ``run_one(x, seed)`` evaluation — is a pure
function of the experiment name, the task configuration, the grid
point, and the seed.  That makes its result safely cacheable under a
stable content hash of exactly those inputs: repeated sweeps (and CI
re-runs of the benchmark suite) skip every cell they have already
computed, while *any* change to the configuration changes the key and
transparently invalidates the entry.

Records are small JSON files sharded into two-level subdirectories
(``<root>/<key[:2]>/<key>.json``) so a cache of tens of thousands of
cells stays friendly to ordinary filesystems.  Writes are atomic
(temp file + :func:`os.replace`), so a sweep interrupted mid-write
never leaves a truncated record behind.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..core.errors import AnalysisError
from ..faults import fault_point

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "RESULT_CODE_VERSION",
    "fingerprint_of",
    "canonical_json",
    "cell_key",
    "CellRecord",
    "ResultCache",
]

_KEY_BYTES = 16

#: Hashed into every cell key.  Bumped whenever key derivation or the
#: record layout changes incompatibly; old-schema entries then simply
#: never hit.  History: 1 = PR 1 layout; 2 = seed labels normalize grid
#: values with float(x) exactly like the key does (entries cached under
#: schema 1 may have been computed under seeds derived from the raw,
#: unnormalized grid value, so they cannot be trusted); 3 = duplicate
#: grid values derive per-occurrence seed labels (repeated points used
#: to alias one seed list — and hence one set of cache cells — so any
#: entry touched by a duplicated grid under schema 2 may hold an
#: aliased copy rather than an independent repetition); 4 = the
#: Scenario API redesign keys sweep cells by Scenario.to_dict() (config
#: + network + schedule + attack) instead of a flat GossipConfig dict
#: that still carried execution fields — same physics, incompatible
#: fingerprint shape.
CACHE_SCHEMA_VERSION = 4

#: Stamped into every record and checked on read.  Identifies the
#: simulator code generation that produced the value: bump it to bulk-
#: invalidate everything cached by earlier code (e.g. results computed
#: by the set backend before the bitset backend existed), without
#: having to find and delete the stale files.
RESULT_CODE_VERSION = "2-bitset"


def fingerprint_of(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable structure for hashing.

    Dataclasses become ``{"<qualified name>": {field: ...}}`` so two
    config classes with coincidentally equal fields never collide;
    enums become their values; tuples become lists.  Anything else must
    already be JSON-serializable.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: fingerprint_of(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {f"{type(obj).__module__}.{type(obj).__qualname__}": fields}
    if isinstance(obj, enum.Enum):
        return fingerprint_of(obj.value)
    if isinstance(obj, (list, tuple)):
        return [fingerprint_of(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): fingerprint_of(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise AnalysisError(
        f"cannot fingerprint {type(obj).__name__!r} for cache keying"
    )


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def cell_key(experiment: str, fingerprint: Any, x: float, seed: int) -> str:
    """Stable content hash identifying one sweep cell."""
    payload = canonical_json(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "experiment": experiment,
            "fingerprint": fingerprint_of(fingerprint),
            "x": float(x),
            "seed": int(seed),
        }
    )
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=_KEY_BYTES)
    return digest.hexdigest()


@dataclass(frozen=True)
class CellRecord:
    """One cached cell result.

    ``value`` may legitimately be None (``run_one`` dropped the
    sample), which is why cache lookups return a record object rather
    than the bare value: a missing entry and a cached None must stay
    distinguishable.  ``version`` records which code generation
    produced the value (see :data:`RESULT_CODE_VERSION`).
    """

    value: Optional[float]
    experiment: str
    x: float
    seed: int
    created: float
    version: str = RESULT_CODE_VERSION


class _StaleRecord(ValueError):
    """A structurally valid record from a different code generation."""


class ResultCache:
    """A directory of content-addressed sweep cell records.

    Parameters
    ----------
    root:
        Directory to store records under; created lazily on first
        write.  Two caches pointed at the same directory share entries.
    max_entries:
        When set, cap the store at this many records: every write that
        pushes the count over the cap evicts the least-recently-*used*
        records (reads refresh a record's timestamp).  None (the
        default) keeps the store unbounded.  The count is tracked per
        cache object; two live caches sharing a directory may
        transiently overshoot the cap until one of them writes.
    """

    def __init__(
        self, root: Union[str, Path], max_entries: Optional[int] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise AnalysisError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.root = Path(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantines = 0
        self._count: Optional[int] = None

    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives on disk."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CellRecord]:
        """Return the cached record for ``key``, or None on a miss.

        Never raises out of a sweep.  A record stamped by a different
        code generation is deleted (stale, by design — see
        :data:`RESULT_CODE_VERSION`); a *corrupt* record (truncated,
        torn, hand-edited, garbage JSON — i.e. something went wrong on
        disk) is quarantined under a ``*.corrupt`` name with a warning,
        so the evidence survives for diagnosis while the slot recomputes
        cleanly.  A hit refreshes the record's timestamp, which is what
        the LRU eviction orders by.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            value = raw["value"]
            if not (
                value is None
                or (isinstance(value, (int, float)) and not isinstance(value, bool))
            ):
                raise TypeError(f"bad cached value {value!r}")
            version = str(raw["version"])
            if version != RESULT_CODE_VERSION:
                raise _StaleRecord(f"stale record version {version!r}")
            record = CellRecord(
                value=value if value is None else float(value),
                experiment=str(raw["experiment"]),
                x=float(raw["x"]),
                seed=int(raw["seed"]),
                created=float(raw["created"]),
                version=version,
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except _StaleRecord:
            path.unlink(missing_ok=True)
            if self._count is not None and self._count > 0:
                self._count -= 1
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        try:
            os.utime(path, None)  # mark as recently used for LRU ordering
        except OSError:  # pragma: no cover - racing eviction/cleanup
            pass
        self.hits += 1
        return record

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a corrupt record aside (``*.corrupt``) and warn.

        The rename takes the file out of :meth:`keys` (which globs
        ``*.json``) without destroying the evidence; if even the rename
        fails the record is deleted — a sweep must never die on a bad
        cache file.
        """
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            path.unlink(missing_ok=True)
            quarantined = None
        if self._count is not None and self._count > 0:
            self._count -= 1
        self.quarantines += 1
        destination = (
            f"quarantined as {quarantined.name}"
            if quarantined is not None
            else "deleted"
        )
        warnings.warn(
            f"corrupt cache record {path.name} "
            f"({type(reason).__name__}: {reason}); {destination}",
            RuntimeWarning,
            stacklevel=3,
        )

    def put(
        self,
        key: str,
        value: Optional[float],
        experiment: str,
        x: float,
        seed: int,
    ) -> CellRecord:
        """Atomically persist one cell result under ``key``.

        When ``max_entries`` is set and the write pushes the store over
        the cap, the least-recently-used surplus records are evicted.
        """
        record = CellRecord(
            value=None if value is None else float(value),
            experiment=experiment,
            x=float(x),
            seed=int(seed),
            created=time.time(),  # lotus: ignore[DET003] cache-record LRU metadata, not simulation state
        )
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(dataclasses.asdict(record), sort_keys=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        fresh = not path.exists()
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
            # Injection site for the chaos suite: tears the *committed*
            # record, exactly the damage a crashed host leaves behind.
            fault_point("cache:record", path=str(path))
        except BaseException:
            try:
                os.unlink(temp_name)
            except FileNotFoundError:
                pass
            raise
        if self.max_entries is not None:
            if self._count is None:
                self._count = len(self)
            elif fresh:
                self._count += 1
            if self._count > self.max_entries:
                self._evict_lru()
        return record

    def _evict_lru(self) -> None:
        """Delete the least-recently-used records beyond ``max_entries``."""
        entries = []
        for key in self.keys():
            record_path = self.path_for(key)
            try:
                entries.append((record_path.stat().st_mtime, record_path))
            except OSError:  # pragma: no cover - racing writer/cleaner
                continue
        excess = len(entries) - self.max_entries
        if excess > 0:
            entries.sort(key=lambda entry: entry[0])
            for _, record_path in entries[:excess]:
                record_path.unlink(missing_ok=True)
                self.evictions += 1
        self._count = min(len(entries), self.max_entries)

    def keys(self) -> Iterator[str]:
        """Iterate over all record keys currently on disk."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                # Path.glob("*.json") matches dotfiles too; skip any
                # orphaned .tmp-* left by a killed writer.
                if path.name.startswith("."):
                    continue
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            self.path_for(key).unlink(missing_ok=True)
            removed += 1
        self._count = 0
        return removed

    def stats(self) -> Dict[str, int]:
        """Lifetime hit/miss/eviction counters for this cache object."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "quarantines": self.quarantines,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )
