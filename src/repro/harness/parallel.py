"""Parallel execution of sweep cells with deterministic reduction.

A figure sweep is a grid of attacker fractions crossed with per-point
repetition seeds; every (grid-point, seed) *cell* is an independent
simulator run.  :class:`SweepExecutor` fans those cells across a
supervised process pool and reduces the results back into grid
order, so parallel output is bit-identical to serial output: each cell
is a pure function of ``(x, seed)``, and the reduction is keyed by the
cell's position, never by completion order.

Design constraints baked in here:

* **Picklable task specs** — the ``run_one`` callable travels inside
  each cell payload (tasks are tiny specs — a module-level function
  or a dataclass with ``__call__`` such as
  :class:`repro.harness.tasks.GossipSweepTask` — so re-pickling one
  per cell is negligible next to a simulator run, and the long-lived
  pool stays reusable across different tasks).  Closures and lambdas
  are detected up front and transparently executed serially
  in-process instead, so exploratory code keeps working.
* **Chunked scheduling** — cells are handed to workers in contiguous
  chunks (default: ~4 chunks per worker) to amortize IPC overhead on
  fine-grained grids.
* **Result caching** — when the executor carries a
  :class:`~repro.harness.cache.ResultCache` and the task exposes a
  ``cache_fingerprint()``, cells already on disk are served from the
  cache and only the misses are dispatched to the pool.
* **Fault tolerance** — execution runs on a
  :class:`~repro.harness.supervise.SupervisedPool`: a dead or wedged
  worker is detected (liveness check / per-cell deadline), the worker
  is respawned, and only the lost cells re-run; a raising cell is
  isolated and retried up to ``retries`` times with seeded backoff.
  Cells that exhaust their budget become terminal
  :class:`~repro.harness.supervise.CellFailure` records and the
  ``on_failure`` policy decides what happens: ``"raise"`` (the
  default) aborts the sweep with a summary, ``"skip"`` drops the
  samples, ``"serial"`` re-runs the quarantined cells in-process as a
  last resort.  Because cells are pure functions of ``(x, seed)``,
  every recovery path reproduces the undisturbed result bit-exactly —
  pinned by the chaos suite.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.errors import AnalysisError
from ..faults import FaultPlan, arm as _arm_faults, fault_point
from .cache import ResultCache, cell_key
from .supervise import CellFailure, SupervisedPool, SupervisionPolicy

__all__ = ["SweepCell", "SweepExecutor", "resolve_jobs", "ON_FAILURE_POLICIES"]

#: A cell whose result is absent (distinct from a legitimate None value).
_MISSING = object()

#: What to do with cells whose retry budget is spent.
ON_FAILURE_POLICIES = ("raise", "skip", "serial")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means one per CPU."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise AnalysisError(f"jobs must be >= 0 (0 = all CPUs), got {jobs}")
    return int(jobs)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work: a grid point and a seed."""

    x: float
    seed: int


def _init_sweep_worker(fault_plan: Optional[FaultPlan]) -> None:
    """Pool initializer: arm the fault plan (tests only; None in prod)."""
    if fault_plan is not None:
        _arm_faults(fault_plan)


def _run_chunk(
    payload: Tuple[Callable[[float, int], Optional[float]], List[Tuple[int, float, int]]],
) -> List[Tuple[int, bool, object]]:
    """Pool worker body: one chunk of cells in, per-cell outcomes out.

    Each outcome is ``(index, ok, value-or-error-text)``: a raising
    cell is captured *per cell* so one bad cell cannot poison its
    chunk-mates — they complete, it alone is retried.  The task travels
    inside the payload (it is a tiny picklable spec), which keeps one
    long-lived pool reusable across different tasks.
    """
    run_one, cells = payload
    outcomes: List[Tuple[int, bool, object]] = []
    for index, x, seed in cells:
        fault_point("worker:cell")
        try:
            value = run_one(x, seed)
        except Exception as exc:  # noqa: BLE001 - forwarded as data
            outcomes.append((index, False, f"{type(exc).__name__}: {exc}"))
        else:
            outcomes.append((index, True, value))
    return outcomes


def _is_picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class SweepExecutor:
    """Runs sweep cells serially or across a process pool, with caching.

    Parameters
    ----------
    jobs:
        Worker process count; 1 runs in-process (no pool), None or 0
        uses every CPU.
    cache:
        Optional :class:`ResultCache`.  Only consulted for tasks that
        expose ``cache_fingerprint()`` *and* calls that pass an
        ``experiment`` name — arbitrary callables cannot be content-
        addressed safely.
    chunk_size:
        Cells per pool task; defaults to ~4 chunks per worker.
    mp_context:
        Optional :mod:`multiprocessing` start-method name ("fork",
        "spawn", "forkserver"); None uses the platform default.
    retries:
        Re-attempts per cell after its first failure (crash, missed
        deadline, or raise) before the cell is terminally failed.
    cell_timeout:
        Per-cell deadline in seconds (scaled by chunk size for chunked
        dispatch); None disables deadlines.
    on_failure:
        Policy for cells whose budget is spent: ``"raise"`` aborts the
        sweep, ``"skip"`` records None samples, ``"serial"`` re-runs
        the quarantined cells in-process.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` armed in every
        worker (chaos tests only); excluded from cache keys by design.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
        retries: int = 2,
        cell_timeout: Optional[float] = None,
        on_failure: str = "raise",
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        if chunk_size is not None and chunk_size < 1:
            raise AnalysisError(f"chunk_size must be >= 1, got {chunk_size}")
        if retries < 0:
            raise AnalysisError(f"retries must be >= 0, got {retries}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise AnalysisError(
                f"cell_timeout must be > 0 or None, got {cell_timeout}"
            )
        if on_failure not in ON_FAILURE_POLICIES:
            raise AnalysisError(
                f"on_failure must be one of {ON_FAILURE_POLICIES}, "
                f"got {on_failure!r}"
            )
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.retries = retries
        self.cell_timeout = cell_timeout
        self.on_failure = on_failure
        self.fault_plan = fault_plan
        #: Cells actually executed (cache hits excluded), lifetime total.
        self.cells_executed = 0
        #: Cells served from the cache, lifetime total.
        self.cells_cached = 0
        #: Terminal per-cell failure records, lifetime (cleared never;
        #: sweeps/benches read and report them).
        self.failures: List[CellFailure] = []
        # Lazily created on the first parallel _execute and reused for
        # every subsequent map() — a figure is several curves and a
        # bench run several figures, so per-call pools would pay
        # worker spin-up (an interpreter start each, under spawn)
        # many times per run.
        self._pool: Optional[SupervisedPool] = None

    def map(
        self,
        run_one: Callable[[float, int], Optional[float]],
        cells: Sequence[SweepCell],
        experiment: Optional[str] = None,
    ) -> List[Optional[float]]:
        """Evaluate ``run_one`` over ``cells``, preserving cell order.

        The returned list is positionally aligned with ``cells`` and is
        identical whatever the ``jobs`` setting: parallelism never
        changes *what* is computed, only *where*.  Terminally failed
        cells (see ``on_failure``) are never written to the cache.
        """
        results: List[object] = [_MISSING] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)

        fingerprint_fn = getattr(run_one, "cache_fingerprint", None)
        use_cache = (
            self.cache is not None
            and experiment is not None
            and callable(fingerprint_fn)
        )
        if use_cache:
            fingerprint = fingerprint_fn()
            for index, cell in enumerate(cells):
                key = cell_key(experiment, fingerprint, cell.x, cell.seed)
                keys[index] = key
                record = self.cache.get(key)
                if record is not None:
                    results[index] = record.value
                    self.cells_cached += 1

        pending = [
            (index, cell)
            for index, cell in enumerate(cells)
            if results[index] is _MISSING
        ]
        if pending:
            values, failed = self._execute(
                run_one, [cell for _, cell in pending]
            )
            for position, ((index, cell), value) in enumerate(
                zip(pending, values)
            ):
                results[index] = value
                if use_cache and position not in failed:
                    self.cache.put(
                        keys[index], value, experiment, cell.x, cell.seed
                    )
            self.cells_executed += len(pending)
        assert all(value is not _MISSING for value in results)
        return list(results)  # type: ignore[arg-type]

    def _execute(
        self,
        run_one: Callable[[float, int], Optional[float]],
        cells: Sequence[SweepCell],
    ) -> Tuple[List[Optional[float]], Set[int]]:
        """Run the non-cached cells, serially or on the supervised pool.

        Returns ``(values, failed_positions)``; positions index into
        ``cells``.  The serial path is the reference semantics — no
        supervision, exceptions propagate — and is also what
        ``on_failure="serial"`` falls back to.
        """
        if self.jobs <= 1 or len(cells) <= 1 or not _is_picklable(run_one):
            return [run_one(cell.x, cell.seed) for cell in cells], set()

        chunk = self.chunk_size or max(
            1, math.ceil(len(cells) / (self.jobs * 4))
        )
        groups: List[List[Tuple[int, float, int]]] = [
            [
                (index, cell.x, cell.seed)
                for index, cell in enumerate(cells[start : start + chunk], start)
            ]
            for start in range(0, len(cells), chunk)
        ]

        values: List[Optional[float]] = [None] * len(cells)
        resolved: List[bool] = [False] * len(cells)
        attempts = [0] * len(cells)
        last_error = [""] * len(cells)
        last_fate = [""] * len(cells)
        backoff_rng = np.random.default_rng(len(cells))
        policy = SupervisionPolicy(retries=0, task_timeout=None)

        # Round 0 dispatches the chunks; later rounds re-dispatch only
        # the failing cells, one per task, so a flaky cell cannot drag
        # healthy chunk-mates through its retries.
        round_index = 0
        while groups and round_index <= self.retries:
            retry_cells: List[int] = []
            pool = self._get_pool()
            timeouts = (
                [self.cell_timeout * len(group) for group in groups]
                if self.cell_timeout is not None
                else None
            )
            outcomes, task_failures = pool.run(
                _run_chunk,
                [(run_one, group) for group in groups],
                policy=policy,
                labels=[
                    f"cells[{group[0][0]}..{group[-1][0]}]" for group in groups
                ],
                timeouts=timeouts,
            )
            for group, outcome in zip(groups, outcomes):
                if outcome is None:
                    continue  # the task itself failed; handled below
                for index, ok, payload in outcome:
                    attempts[index] += 1
                    if ok:
                        values[index] = payload
                        resolved[index] = True
                    else:
                        last_error[index] = str(payload)
                        last_fate[index] = "raised"
                        retry_cells.append(index)
            for failure in task_failures:
                for index, _x, _seed in groups[failure.index]:
                    attempts[index] += 1
                    last_error[index] = failure.error
                    last_fate[index] = failure.fate
                    retry_cells.append(index)
            groups = [[(index, cells[index].x, cells[index].seed)] for index in sorted(retry_cells)]
            round_index += 1
            if groups and round_index <= self.retries:
                # Seeded backoff between retry rounds: transient
                # resource pressure (the common real cause of worker
                # loss) gets a moment to clear.
                time.sleep(
                    policy.backoff_delay(round_index, backoff_rng)
                )

        failed = {index for index in range(len(cells)) if not resolved[index]}
        if not failed:
            return values, set()

        terminal: Dict[int, CellFailure] = {
            index: CellFailure(
                x=cells[index].x,
                seed=cells[index].seed,
                attempts=attempts[index],
                fate=last_fate[index],
                error=last_error[index],
            )
            for index in sorted(failed)
        }
        if self.on_failure == "serial":
            # Last resort: run the quarantined cells in-process, where
            # no pool, no pickling and no injected worker faults stand
            # between us and the result.  Cells are pure functions of
            # (x, seed), so a success here is *the* correct value.
            for index in sorted(failed):
                cell = cells[index]
                try:
                    values[index] = run_one(cell.x, cell.seed)
                except Exception as exc:  # noqa: BLE001 - terminal record
                    failure = terminal[index]
                    terminal[index] = CellFailure(
                        x=failure.x,
                        seed=failure.seed,
                        attempts=failure.attempts + 1,
                        fate="raised",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    del terminal[index]
        self.failures.extend(terminal.values())
        if terminal and self.on_failure == "raise":
            summary = "; ".join(
                f"cell(x={f.x}, seed={f.seed}): {f.fate} after "
                f"{f.attempts} attempt(s) ({f.error})"
                for f in list(terminal.values())[:5]
            )
            raise AnalysisError(
                f"{len(terminal)} cell(s) failed terminally after "
                f"{self.retries} retries: {summary}"
            )
        return values, set(terminal)

    def _get_pool(self) -> SupervisedPool:
        if self._pool is None:
            self._pool = SupervisedPool(
                self.jobs,
                initializer=_init_sweep_worker,
                initargs=(self.fault_plan,),
                mp_context=self.mp_context,
            )
        return self._pool

    def warm_up(self) -> None:
        """Pre-create the worker pool (no-op when jobs == 1).

        Call before timing parallel work so worker spin-up — a full
        interpreter start per worker under the spawn method — is not
        charged to the first measured sweep.
        """
        if self.jobs > 1:
            self._get_pool().start()

    def close(self, join_deadline: float = 5.0) -> None:
        """Shut down the worker pool (idempotent; a later map() reopens it).

        Waits up to ``join_deadline`` seconds for a graceful exit, then
        terminates stragglers — an executor abandoned with wedged
        workers must not hang interpreter exit or leak children.
        """
        if self._pool is not None:
            self._pool.close(join_deadline=join_deadline)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters: executed vs cache-served vs failed cells."""
        return {
            "jobs": self.jobs,
            "cells_executed": self.cells_executed,
            "cells_cached": self.cells_cached,
            "cells_failed": len(self.failures),
        }

    def failure_records(self) -> List[Dict[str, object]]:
        """Terminal failures as JSON-ready dicts (sweep/bench artifacts)."""
        return [failure.as_dict() for failure in self.failures]

    def __repr__(self) -> str:
        return (
            f"SweepExecutor(jobs={self.jobs}, "
            f"cache={'on' if self.cache is not None else 'off'}, "
            f"executed={self.cells_executed}, cached={self.cells_cached}, "
            f"failed={len(self.failures)})"
        )
