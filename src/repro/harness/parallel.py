"""Parallel execution of sweep cells with deterministic reduction.

A figure sweep is a grid of attacker fractions crossed with per-point
repetition seeds; every (grid-point, seed) *cell* is an independent
simulator run.  :class:`SweepExecutor` fans those cells across a
:mod:`multiprocessing` pool and reduces the results back into grid
order, so parallel output is bit-identical to serial output: each cell
is a pure function of ``(x, seed)``, and the reduction is keyed by the
cell's position, never by completion order.

Design constraints baked in here:

* **Picklable task specs** — the ``run_one`` callable travels inside
  each cell payload (tasks are tiny specs — a module-level function
  or a dataclass with ``__call__`` such as
  :class:`repro.harness.tasks.GossipSweepTask` — so re-pickling one
  per cell is negligible next to a simulator run, and the long-lived
  pool stays reusable across different tasks).  Closures and lambdas
  are detected up front and transparently executed serially
  in-process instead, so exploratory code keeps working.
* **Chunked scheduling** — cells are handed to workers in contiguous
  chunks (default: ~4 chunks per worker) to amortize IPC overhead on
  fine-grained grids.
* **Result caching** — when the executor carries a
  :class:`~repro.harness.cache.ResultCache` and the task exposes a
  ``cache_fingerprint()``, cells already on disk are served from the
  cache and only the misses are dispatched to the pool.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import AnalysisError
from .cache import ResultCache, cell_key

__all__ = ["SweepCell", "SweepExecutor", "resolve_jobs"]

#: A cell whose result is absent (distinct from a legitimate None value).
_MISSING = object()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means one per CPU."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise AnalysisError(f"jobs must be >= 0 (0 = all CPUs), got {jobs}")
    return int(jobs)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work: a grid point and a seed."""

    x: float
    seed: int


def _run_cell(
    payload: Tuple[Callable[[float, int], Optional[float]], int, float, int],
) -> Tuple[int, Optional[float]]:
    """Pool worker body: one cell in, (index, value) out.

    The task travels inside the payload (it is a tiny picklable spec,
    so re-pickling it per cell is negligible next to a simulator run);
    this keeps one long-lived pool reusable across different tasks.
    """
    run_one, index, x, seed = payload
    return index, run_one(x, seed)


def _is_picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class SweepExecutor:
    """Runs sweep cells serially or across a process pool, with caching.

    Parameters
    ----------
    jobs:
        Worker process count; 1 runs in-process (no pool), None or 0
        uses every CPU.
    cache:
        Optional :class:`ResultCache`.  Only consulted for tasks that
        expose ``cache_fingerprint()`` *and* calls that pass an
        ``experiment`` name — arbitrary callables cannot be content-
        addressed safely.
    chunk_size:
        Cells per pool task; defaults to ~4 chunks per worker.
    mp_context:
        Optional :mod:`multiprocessing` start-method name ("fork",
        "spawn", "forkserver"); None uses the platform default.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        if chunk_size is not None and chunk_size < 1:
            raise AnalysisError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        #: Cells actually executed (cache hits excluded), lifetime total.
        self.cells_executed = 0
        #: Cells served from the cache, lifetime total.
        self.cells_cached = 0
        # Lazily created on the first parallel _execute and reused for
        # every subsequent map() — a figure is several curves and a
        # bench run several figures, so per-call pools would pay
        # worker spin-up (an interpreter start each, under spawn)
        # many times per run.
        self._pool: Optional["multiprocessing.pool.Pool"] = None

    def map(
        self,
        run_one: Callable[[float, int], Optional[float]],
        cells: Sequence[SweepCell],
        experiment: Optional[str] = None,
    ) -> List[Optional[float]]:
        """Evaluate ``run_one`` over ``cells``, preserving cell order.

        The returned list is positionally aligned with ``cells`` and is
        identical whatever the ``jobs`` setting: parallelism never
        changes *what* is computed, only *where*.
        """
        results: List[object] = [_MISSING] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)

        fingerprint_fn = getattr(run_one, "cache_fingerprint", None)
        use_cache = (
            self.cache is not None
            and experiment is not None
            and callable(fingerprint_fn)
        )
        if use_cache:
            fingerprint = fingerprint_fn()
            for index, cell in enumerate(cells):
                key = cell_key(experiment, fingerprint, cell.x, cell.seed)
                keys[index] = key
                record = self.cache.get(key)
                if record is not None:
                    results[index] = record.value
                    self.cells_cached += 1

        pending = [
            (index, cell)
            for index, cell in enumerate(cells)
            if results[index] is _MISSING
        ]
        if pending:
            values = self._execute(run_one, [cell for _, cell in pending])
            for (index, cell), value in zip(pending, values):
                results[index] = value
                if use_cache:
                    self.cache.put(
                        keys[index], value, experiment, cell.x, cell.seed
                    )
            self.cells_executed += len(pending)
        assert all(value is not _MISSING for value in results)
        return list(results)  # type: ignore[arg-type]

    def _execute(
        self,
        run_one: Callable[[float, int], Optional[float]],
        cells: Sequence[SweepCell],
    ) -> List[Optional[float]]:
        """Run the non-cached cells, serially or on the pool."""
        if self.jobs <= 1 or len(cells) <= 1 or not _is_picklable(run_one):
            return [run_one(cell.x, cell.seed) for cell in cells]

        payloads = [
            (run_one, index, cell.x, cell.seed)
            for index, cell in enumerate(cells)
        ]
        chunk = self.chunk_size or max(
            1, math.ceil(len(payloads) / (self.jobs * 4))
        )
        indexed = self._get_pool().map(_run_cell, payloads, chunksize=chunk)
        # pool.map already preserves submission order; reduce by the
        # explicit index anyway so determinism never rests on pool
        # internals.
        values: List[Optional[float]] = [None] * len(cells)
        seen = 0
        for index, value in indexed:
            values[index] = value
            seen += 1
        if seen != len(cells):
            raise AnalysisError(
                f"pool returned {seen} results for {len(cells)} cells"
            )
        return values

    def _get_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            context = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else multiprocessing
            )
            self._pool = context.Pool(processes=self.jobs)
        return self._pool

    def warm_up(self) -> None:
        """Pre-create the worker pool (no-op when jobs == 1).

        Call before timing parallel work so worker spin-up — a full
        interpreter start per worker under the spawn method — is not
        charged to the first measured sweep.
        """
        if self.jobs > 1:
            self._get_pool()

    def close(self) -> None:
        """Shut down the worker pool (idempotent; a later map() reopens it)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters: executed vs cache-served cells."""
        return {
            "jobs": self.jobs,
            "cells_executed": self.cells_executed,
            "cells_cached": self.cells_cached,
        }

    def __repr__(self) -> str:
        return (
            f"SweepExecutor(jobs={self.jobs}, "
            f"cache={'on' if self.cache is not None else 'off'}, "
            f"executed={self.cells_executed}, cached={self.cells_cached})"
        )
