"""ASCII rendering of tables and attack curves.

The original figures are MATLAB plots; a terminal reproduction renders
the same series as aligned tables and a coarse ASCII chart so the
"shape" claims (who wins, where the crossovers fall) are visible in CI
logs without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.errors import AnalysisError
from ..core.metrics import TimeSeries

__all__ = ["render_table", "render_series_table", "render_chart"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A plain aligned text table."""
    if any(len(row) != len(headers) for row in rows):
        raise AnalysisError("all rows must match the header width")
    cells = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_series_table(
    series: Dict[str, TimeSeries],
    x_label: str = "x",
    y_format: str = "{:.3f}",
) -> str:
    """All series side by side, one row per x value.

    Requires every series to be sampled on the same x grid (which the
    figure harness guarantees).
    """
    if not series:
        raise AnalysisError("no series to render")
    grids = {tuple(s.xs) for s in series.values()}
    if len(grids) != 1:
        raise AnalysisError("series must share one x grid")
    labels = list(series)
    headers = [x_label] + labels
    rows: List[List[object]] = []
    xs = next(iter(series.values())).xs
    for index, x in enumerate(xs):
        row: List[object] = [f"{x:.3f}"]
        for label in labels:
            row.append(y_format.format(series[label].ys[index]))
        rows.append(row)
    return render_table(headers, rows)


def render_chart(
    series: Dict[str, TimeSeries],
    height: int = 16,
    y_min: float = 0.0,
    y_max: float = 1.0,
    threshold: Optional[float] = None,
) -> str:
    """A coarse ASCII line chart of multiple series.

    Each series is drawn with its own glyph (first letter of the
    label); an optional horizontal threshold line (the 93% usability
    bar) is drawn with ``-``.
    """
    if not series:
        raise AnalysisError("no series to render")
    if height < 4:
        raise AnalysisError(f"height must be >= 4, got {height}")
    grids = {tuple(s.xs) for s in series.values()}
    if len(grids) != 1:
        raise AnalysisError("series must share one x grid")
    xs = next(iter(series.values())).xs
    width = len(xs)
    rows = [[" "] * width for _ in range(height)]

    def row_of(value: float) -> int:
        clamped = min(max(value, y_min), y_max)
        scaled = (clamped - y_min) / (y_max - y_min) if y_max > y_min else 0.0
        return (height - 1) - int(round(scaled * (height - 1)))

    if threshold is not None:
        threshold_row = row_of(threshold)
        for col in range(width):
            rows[threshold_row][col] = "-"
    glyphs = {}
    for label in series:
        glyph = label[0].upper() if label else "?"
        while glyph in glyphs.values():
            glyph = chr(ord(glyph) + 1)
        glyphs[label] = glyph
    for label, ts in series.items():
        for col, y in enumerate(ts.ys):
            rows[row_of(y)][col] = glyphs[label]
    lines = []
    for index, row in enumerate(rows):
        y_value = y_max - (y_max - y_min) * index / (height - 1)
        lines.append(f"{y_value:5.2f} |" + "".join(row))
    lines.append(" " * 6 + "+" + "-" * width)
    lines.append(
        " " * 7 + f"x: {xs[0]:.2f} .. {xs[-1]:.2f}   " +
        "  ".join(f"{glyph}={label}" for label, glyph in glyphs.items())
    )
    return "\n".join(lines)
