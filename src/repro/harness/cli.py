"""Command-line entry point: regenerate any experiment from a shell.

Installed as ``lotus-eater`` (see ``pyproject.toml``)::

    lotus-eater table1
    lotus-eater figure1 --fast --jobs 4
    lotus-eater figure2 --backend bitset
    lotus-eater figure3 --seed 7
    lotus-eater tokenmodel
    lotus-eater scrip
    lotus-eater bittorrent
    lotus-eater sweep-gossip --grid 0.1,0.2,0.3 --repetitions 3
    lotus-eater sweep-scrip --grid 0,4,8,16 --metric free_service_share
    lotus-eater sweep-token --grid 0,0.1,0.2,0.4
    lotus-eater sweep-swarm --grid 0,1,2,4 --jobs 0
    lotus-eater figure1 --shards 4
    lotus-eater figure1 --backend words --memory shared --shards 4
    lotus-eater figure1 --schedule event
    lotus-eater figure1 --schedule event --latency exponential:0.3 --loss 0.05
    lotus-eater sweep-gossip --schedule event --churn 0.002:0.05
    lotus-eater bench --fast --output BENCH_summary.json
    lotus-eater scale-bench --scale-nodes 100000,1000000
    lotus-eater bench-diff BENCH_previous.json BENCH_summary.json
    lotus-eater bench-trend --history-dir .bench-history
    lotus-eater lint src tests benchmarks examples
    lotus-eater lint --format json
    lotus-eater lint --write-baseline --justification "pre-DET002 code"

Sweep-based commands (the figures, the per-model ``sweep-*``
subcommands, ``table1``'s baseline, ``bench``) fan their (grid-point,
seed) cells across ``--jobs`` worker processes and cache cell results
content-addressed under ``--cache-dir`` (default
``$LOTUS_EATER_CACHE_DIR`` or ``.lotus-eater-cache``), so repeated runs
skip every already-computed simulation.  ``--no-cache`` disables the
store; parallel output is bit-identical to ``--jobs 1``.  ``--backend
bitset`` switches the gossip commands to the packed-bitset store (same
results, measured ~2.8x faster single-core at scale); ``--backend
words`` to the fixed-width word-array store (batched phase sweeps, and
the only backend supporting ``--memory shared``, which places the rows
in a shared-memory block so sharded workers mutate them in place).
``--shards k`` switches the gossip commands to the sharded round
schedule (one simulation partitioned into k independent shards per
round — results identical for every k; combine with ``--jobs`` freely:
jobs split the sweep grid, shards split one run).  ``--schedule
event`` replays the gossip commands on the virtual-time event engine
(bit-identical to the rounds schedule when the network is ideal), and
``--latency`` / ``--loss`` / ``--churn`` describe the asynchronous
network it simulates (all three require ``--schedule event``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

from ..bargossip.config import GossipConfig
from ..bargossip.network import NetworkModel
from ..bargossip.scenario import ExecutionConfig
from ..core.errors import ReproError
from ..core.metrics import USABILITY_THRESHOLD
from .ascii import render_chart, render_series_table, render_table
from .bench import (
    SCALE_BENCH_POINTS,
    render_bench_summary,
    render_scale_bench,
    run_bench,
    run_scale_bench,
    write_bench_summary,
)
from .cache import ResultCache
from .figures import DEFAULT_FRACTIONS, FAST_FRACTIONS, crossovers, figure1, figure2, figure3
from .parallel import SweepExecutor
from .sweep import sweep
from .tables import baseline_check, render_table1
from .tasks import TASK_BUILDERS
from .trend import (
    compare_bench_history,
    compare_bench_summaries,
    load_bench_summary,
    render_bench_diff,
    render_bench_history,
    update_bench_history,
)

__all__ = ["main", "build_executor"]

#: Cache directory used when neither --cache-dir nor the environment
#: variable overrides it.
DEFAULT_CACHE_DIR = ".lotus-eater-cache"


def build_executor(args: argparse.Namespace) -> SweepExecutor:
    """The sweep executor implied by --jobs / --cache-dir / --no-cache."""
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get(
            "LOTUS_EATER_CACHE_DIR", DEFAULT_CACHE_DIR
        )
        cache = ResultCache(cache_dir)
    return SweepExecutor(
        jobs=1 if args.jobs is None else args.jobs,
        cache=cache,
        retries=getattr(args, "retries", 2),
        cell_timeout=getattr(args, "cell_timeout", None),
        on_failure=getattr(args, "on_failure", "raise"),
    )


def _report_executor(executor: SweepExecutor) -> None:
    stats = executor.stats()
    print(
        f"[sweep] jobs={stats['jobs']} cells executed={stats['cells_executed']} "
        f"cached={stats['cells_cached']} failed={stats['cells_failed']}",
        file=sys.stderr,
    )
    for failure in executor.failures:
        print(
            f"[sweep] FAILED cell x={failure.x} seed={failure.seed}: "
            f"{failure.fate} after {failure.attempts} attempt(s) "
            f"({failure.error})",
            file=sys.stderr,
        )


def _parse_latency(text: str):
    """``--latency`` spec: MEAN, or KIND:MEAN, or uniform:MEAN:JITTER."""
    parts = text.split(":")
    try:
        if len(parts) == 1:
            return ("fixed", float(parts[0]), 0.0)
        kind = parts[0]
        mean = float(parts[1])
        jitter = float(parts[2]) if len(parts) > 2 else 0.0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad latency {text!r}: expected MEAN, KIND:MEAN or "
            "uniform:MEAN:JITTER (kinds: fixed, uniform, exponential)"
        ) from None
    if kind not in ("fixed", "uniform", "exponential"):
        raise argparse.ArgumentTypeError(
            f"bad latency kind {kind!r}: expected fixed, uniform or exponential"
        )
    return (kind, mean, jitter)


def _parse_churn(text: str):
    """``--churn`` spec: LEAVE or LEAVE:JOIN (per-node Poisson rates)."""
    parts = text.split(":")
    try:
        leave = float(parts[0])
        join = float(parts[1]) if len(parts) > 1 else 0.0
    except (ValueError, IndexError):
        raise argparse.ArgumentTypeError(
            f"bad churn {text!r}: expected LEAVE or LEAVE:JOIN rates"
        ) from None
    return (leave, join)


def network_from_args(args: argparse.Namespace) -> NetworkModel:
    """The NetworkModel implied by --latency / --loss / --churn."""
    kind, mean, jitter = args.latency if args.latency else ("fixed", 0.0, 0.0)
    leave, join = args.churn if args.churn else (0.0, 0.0)
    return NetworkModel(
        latency_kind=kind,
        latency_mean=mean,
        latency_jitter=jitter,
        loss_rate=args.loss,
        churn_leave_rate=leave,
        churn_join_rate=join,
    )


def execution_from_args(args: argparse.Namespace) -> ExecutionConfig:
    """The ExecutionConfig implied by --backend / --memory / --shards."""
    return ExecutionConfig(
        backend=args.backend,
        memory=args.memory,
        shards=args.shards,
        jobs=1 if args.jobs is None else args.jobs,
    )


def _figure_command(builder: Callable, args: argparse.Namespace) -> int:
    fractions = FAST_FRACTIONS if args.fast else DEFAULT_FRACTIONS
    rounds = 30 if args.fast else 50
    with build_executor(args) as executor:
        curves = builder(
            config=GossipConfig.paper(),
            fractions=fractions,
            rounds=rounds,
            repetitions=args.repetitions,
            root_seed=args.seed,
            executor=executor,
            network=network_from_args(args),
            schedule=args.schedule,
            execution=execution_from_args(args),
        )
    print(render_series_table(curves, x_label="attacker fraction"))
    print()
    print(render_chart(curves, threshold=USABILITY_THRESHOLD))
    print()
    rows = [
        (label, "never" if value is None else f"{value:.3f}")
        for label, value in crossovers(curves).items()
    ]
    print(render_table(["curve", "crossover below 93%"], rows))
    _report_executor(executor)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Deliberately NOT build_executor(args): bench measures the
    # executor, so its parallel pass must never be served from the
    # result cache (a warm cache would report absurd speedups).  A
    # bare `lotus-eater bench` also defaults to one worker per CPU —
    # benching with jobs=1 would compare serial against serial.
    jobs = 0 if args.jobs is None else args.jobs
    with SweepExecutor(jobs=jobs) as executor:
        summary = run_bench(
            fast=args.fast,
            jobs=jobs,
            repetitions=args.repetitions,
            root_seed=args.seed,
            executor=executor,
            # --shards 0 (the default elsewhere) means "the standard
            # shard bench" here: the section always runs so trend
            # artifacts stay comparable across runs.
            shard_workers=args.shards or 4,
            scale_points=args.scale_nodes,
            scale_rounds=args.scale_rounds,
        )
    print(render_bench_summary(summary))
    path = write_bench_summary(summary, args.output)
    print(f"wrote {path}", file=sys.stderr)
    mismatched = [
        name
        for name, report in summary["figures"].items()
        if not report["parallel_matches_serial"]
    ]
    if not summary["backend_bench"]["parity_ok"]:
        mismatched.append("backend_bench")
    if not summary["shard_bench"]["parity_ok"]:
        mismatched.append("shard_bench")
    if not summary["memory_bench"]["parity_ok"]:
        mismatched.append("memory_bench")
    if not summary["counters_bench"]["parity_ok"]:
        mismatched.append("counters_bench")
    if not summary["event_bench"]["parity_ok"]:
        mismatched.append("event_bench")
    if not summary["fault_bench"]["parity_ok"]:
        mismatched.append("fault_bench")
    if not summary["scale_bench"]["parity_ok"]:
        mismatched.append("scale_bench")
    if summary["shard_bench"].get("pool_undersubscribed") or summary[
        "memory_bench"
    ].get("pool_undersubscribed"):
        workers = summary["shard_bench"]["workers"]
        print(
            f"warning: pool undersubscribed ({workers} workers > "
            f"{os.cpu_count()} CPU(s)) — pooled timings measure "
            "oversubscription, not parallel speedup (flagged in the "
            "artifact as pool_undersubscribed)",
            file=sys.stderr,
        )
    if mismatched:
        print(
            f"parallel/serial mismatch in: {', '.join(mismatched)}",
            file=sys.stderr,
        )
        return 1
    return 0


#: Default grids for the per-model sweep subcommands (``--grid``
#: overrides).  Gossip sweeps attacker fraction; scrip sweeps altruist
#: head-count; token sweeps the altruism parameter; swarm sweeps
#: attacker peers.
DEFAULT_SWEEP_GRIDS: Dict[str, tuple] = {
    "gossip": FAST_FRACTIONS,
    "scrip": (0, 2, 4, 8, 12, 16),
    "token": (0.0, 0.1, 0.2, 0.3, 0.5),
    "swarm": (0, 1, 2, 3, 4),
}


def _parse_grid(text: str) -> List[float]:
    try:
        grid = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad grid {text!r}: expected comma-separated numbers"
        ) from None
    if not grid:
        raise argparse.ArgumentTypeError("grid must name at least one value")
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    model = args.command.split("-", 1)[1]
    task, x_label = TASK_BUILDERS[model](
        args.fast,
        args.metric,
        execution=execution_from_args(args),
        network=network_from_args(args),
        schedule=args.schedule,
    )
    grid = args.grid if args.grid else DEFAULT_SWEEP_GRIDS[model]
    with build_executor(args) as executor:
        points = sweep(
            grid,
            task,
            repetitions=args.repetitions,
            root_seed=args.seed,
            executor=executor,
            experiment=f"sweep:{model}:{task.metric}",
        )
    rows = [
        (f"{point.x:g}", f"{point.mean:.4f}", f"{point.half_width_95:.4f}", point.samples)
        for point in points
    ]
    print(render_table([x_label, task.metric, "95% half-width", "samples"], rows))
    _report_executor(executor)
    return 0


def _cmd_scale_bench(args: argparse.Namespace) -> int:
    """Run only the population-scale sweep (no figures, no artifact).

    ``lotus-eater bench`` embeds the same section in its JSON summary;
    this subcommand exists for quick spot checks at custom sizes
    (``--scale-nodes 1000000``) without paying for the full suite.
    """
    points = tuple(args.scale_nodes) if args.scale_nodes else (
        SCALE_BENCH_POINTS[:1] if args.fast else SCALE_BENCH_POINTS
    )
    report = run_scale_bench(
        points=points, rounds=args.scale_rounds, seed=args.seed
    )
    print("\n".join(render_scale_bench(report)))
    if not report["parity_ok"]:
        print("scale-bench: determinism check failed", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    previous = load_bench_summary(args.previous)
    current = load_bench_summary(args.current)
    diff = compare_bench_summaries(
        previous, current, max_regression=args.max_regression
    )
    print(render_bench_diff(diff))
    if diff["regressions"]:
        print(
            f"bench-diff: {len(diff['regressions'])} regression(s) beyond "
            f"{args.max_regression:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    # Fold the current summary into the rolling history, then scan the
    # window for sustained — not single-run — drift.  The positionals
    # are shared with bench-diff, so `bench-trend MY_run.json` binds
    # MY_run.json to the (here meaningless) `previous` slot: treat a
    # lone non-default first positional as the current summary instead
    # of silently reading the default BENCH_summary.json.
    current = args.current
    if current == "BENCH_summary.json" and args.previous != "BENCH_previous.json":
        current = args.previous
    paths = update_bench_history(args.history_dir, current, window=args.window)
    summaries = [load_bench_summary(path) for path in paths]
    report = compare_bench_history(
        summaries,
        max_regression=args.max_regression,
        min_sustained=args.min_sustained,
    )
    print(render_bench_history(report))
    if report["sustained_regressions"]:
        print(
            f"bench-trend: {len(report['sustained_regressions'])} metric(s) "
            f"drifted for >= {args.min_sustained} consecutive runs",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_table1())
    check = baseline_check(
        rounds=30 if args.fast else 50,
        seed=args.seed,
        executor=build_executor(args),
    )
    print()
    print(
        f"baseline delivery (no attack): {check['delivery_fraction']:.3f} "
        f"(usable above {check['usability_threshold']:.2f})"
    )
    return 0


def _cmd_tokenmodel(args: argparse.Namespace) -> int:
    from ..core.graphs import grid_column_cut, grid_graph
    from ..tokenmodel import (
        CutSatiationAttack,
        RareTokenAttack,
        TokenSystem,
        rare_token_allocation,
        run_token_experiment,
        uniform_allocation,
    )

    rng = np.random.default_rng(args.seed)
    graph = grid_graph(10, 10)
    rows: List[tuple] = []
    alloc = uniform_allocation(graph, n_tokens=8, copies_per_token=3, rng=rng)
    for altruism in (0.0, 0.2):
        system = TokenSystem.complete_collection(graph, 8, alloc, altruism=altruism)
        for name, attack in (
            ("none", None),
            ("cut column 5", CutSatiationAttack(grid_column_cut(10, 10, 5))),
        ):
            summary = run_token_experiment(system, attack, max_rounds=200, seed=args.seed)
            rows.append(
                (name, f"a={altruism}", summary.starving,
                 f"{summary.mean_coverage_of_starving:.2f}",
                 summary.completion_round or "never")
            )
    alloc2 = rare_token_allocation(graph, 8, 4, rare_token=0, rare_holder=0, rng=rng)
    for altruism in (0.0, 0.2):
        system = TokenSystem.complete_collection(graph, 8, alloc2, altruism=altruism)
        summary = run_token_experiment(
            system, RareTokenAttack([0]), max_rounds=200, seed=args.seed
        )
        rows.append(
            ("rare token", f"a={altruism}", summary.starving,
             f"{summary.mean_coverage_of_starving:.2f}",
             summary.completion_round or "never")
        )
    print(render_table(
        ["attack", "altruism", "starving", "coverage", "completion"], rows
    ))
    return 0


def _cmd_scrip(args: argparse.Namespace) -> int:
    from ..scrip import (
        MoneyInjectionAttack,
        ScripConfig,
        ScripSystem,
        build_rare_resource_agents,
        measure_economy,
    )

    config = ScripConfig.paper().replace(
        n_resource_types=4, type_weights=(0.32, 0.32, 0.32, 0.04)
    )
    providers = [0, 1, 2]
    rows = []
    for name, budget in (("no attack", 0), ("money injection", 60)):
        system = ScripSystem(
            config,
            agents=build_rare_resource_agents(config, rare_type=3, rare_providers=providers),
            seed=args.seed,
        )
        if budget:
            attack = MoneyInjectionAttack(providers, top_up_to=config.threshold, budget=budget)
            attack.install(system)
        report = measure_economy(system, rounds=3000, warmup=300)
        rows.append(
            (name, f"{report.service_rate:.3f}",
             f"{system.service_rate_of_type(3):.3f}",
             f"{system.service_rate_of_type(0):.3f}",
             system.injected_scrip)
        )
    print(render_table(
        ["scenario", "overall rate", "rare-type rate", "common rate", "injected"], rows
    ))
    return 0


def _cmd_bittorrent(args: argparse.Namespace) -> int:
    from ..bittorrent import SwarmConfig, UploadSatiationAttack, run_swarm_experiment

    config = SwarmConfig.paper()
    rows = []
    base = run_swarm_experiment(config, seed=args.seed)
    rows.append(("no attack", f"{base.mean_completion_round:.1f}", "-", "-", 0))
    attack = UploadSatiationAttack(n_attackers=3, targets=range(10), slots_per_attacker=4)
    hit = run_swarm_experiment(config, attack=attack, seed=args.seed)
    rows.append(
        ("upload satiation",
         f"{hit.mean_completion_round:.1f}",
         f"{hit.target_mean_completion:.1f}",
         f"{hit.non_target_mean_completion:.1f}",
         hit.attacker_pieces_uploaded)
    )
    print(render_table(
        ["scenario", "mean completion", "targets", "non-targets", "attacker upload"],
        rows,
    ))
    return 0


def _parse_scale_nodes(text: str) -> List[int]:
    """``--scale-nodes`` spec: comma-separated population sizes."""
    try:
        points = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad scale-nodes {text!r}: expected comma-separated integers"
        ) from None
    if not points or any(point < 8 for point in points):
        raise argparse.ArgumentTypeError(
            "scale-nodes must name at least one population of >= 8 nodes"
        )
    return points


def _jobs_value(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per CPU), got {value}"
        )
    return value


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lotus-eater lint",
        description=(
            "lotus-lint: AST-based determinism & resource-discipline "
            "analyzer.  Rejects the known ways a change silently breaks "
            "the bit-exact parity invariants (global-state randomness, "
            "unsorted set iteration, wall-clock reads, protocol draws "
            "from the network/churn streams, leaked SharedMemory "
            "segments, unguarded counter writes, unpicklable task specs)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src tests benchmarks "
        "examples, whichever exist under the repo root)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help="report format (json is what the CI lint-analysis job reads; "
        "github emits ::error/::warning annotations for PR diffs)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural flow tier (FLW010-FLW013: "
        "shard-write disjointness, RNG-stream taint, SHM lifecycle, "
        "transitive picklability)",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="force the flow tier off (overrides --flow)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache under "
        "<repo root>/.lotus-lint-cache/",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline without its stale entries; exits "
        "non-zero when entries were removed so CI keeps the file tight",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline JSON of grandfathered findings "
        "(default: <repo root>/lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current error finding into the baseline "
        "(requires --justification) and prune stale entries",
    )
    parser.add_argument(
        "--justification",
        default="",
        help="written reason stored with entries --write-baseline adds "
        "(entries without one fail the next run)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to enable (default: all)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list inline-suppressed findings with their reasons",
    )
    return parser


def _cmd_lint(argv: List[str]) -> int:
    """The ``lotus-eater lint`` subcommand (own parser, own positionals)."""
    from pathlib import Path

    from ..analysis import (
        CACHE_DIR_NAME,
        Baseline,
        BaselineEntry,
        LintConfig,
        detect_root,
        format_github,
        format_json,
        format_text,
        run_lint,
    )

    args = _build_lint_parser().parse_args(argv)
    root = detect_root(Path(args.paths[0]).resolve() if args.paths else None)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            "lotus-eater lint: no such path(s): " + ", ".join(missing),
            file=sys.stderr,
        )
        return 2
    paths = [Path(p) for p in args.paths] or [
        root / name
        for name in ("src", "tests", "benchmarks", "examples")
        if (root / name).is_dir()
    ]
    baseline_path = Path(args.baseline) if args.baseline else root / "lint-baseline.json"
    baseline = None if args.no_baseline else Baseline.load(baseline_path)
    enabled = None
    if args.rules:
        enabled = frozenset(code.strip().upper() for code in args.rules.split(","))
    result = run_lint(
        paths,
        config=LintConfig(enabled=enabled),
        root=root,
        baseline=baseline,
        flow=args.flow and not args.no_flow,
        cache_dir=None if args.no_cache else root / CACHE_DIR_NAME,
    )

    if args.prune_baseline:
        if baseline is None:
            print(
                "lotus-eater lint: --prune-baseline needs a baseline "
                "(conflicts with --no-baseline)",
                file=sys.stderr,
            )
            return 2
        stale_keys = {
            (entry.rule, entry.path, entry.fingerprint)
            for entry in result.stale_baseline
        }
        kept = [
            entry
            for entry in baseline.entries
            if (entry.rule, entry.path, entry.fingerprint) not in stale_keys
        ]
        removed = len(baseline.entries) - len(kept)
        Baseline(kept).save(baseline_path)
        print(
            f"[lint] pruned {removed} stale baseline entr"
            f"{'y' if removed == 1 else 'ies'} from {baseline_path} "
            f"({len(kept)} kept)"
        )
        return 1 if removed else 0

    if args.write_baseline:
        if not args.justification.strip():
            print(
                "lotus-eater lint: --write-baseline requires --justification "
                "(every grandfathered finding carries a written reason)",
                file=sys.stderr,
            )
            return 2
        entries = [entry for _, entry in result.baselined]
        entries.extend(
            BaselineEntry.from_finding(finding, args.justification.strip())
            for finding in result.findings
            if finding.severity == "error"
        )
        Baseline(entries).save(baseline_path)
        print(
            f"[lint] wrote {len(entries)} baseline entr"
            f"{'y' if len(entries) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    if args.format == "json":
        print(format_json(result))
    elif args.format == "github":
        print(format_github(result))
    else:
        print(format_text(result, verbose=args.verbose))
    return result.exit_code


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lotus-eater",
        description="Regenerate experiments from 'The Lotus-Eater Attack' (PODC 2008).",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--fast", action="store_true", help="coarser grids / fewer rounds"
    )
    parser.add_argument(
        "--repetitions", type=int, default=1, help="seeds averaged per grid point"
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        help="worker processes for sweep cells (0 = one per CPU; "
        "default 1, except 'bench' which defaults to one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $LOTUS_EATER_CACHE_DIR "
        f"or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-attempts per sweep cell after a worker crash, missed "
        "deadline, or raised exception before the cell fails "
        "terminally (default 2; cells are pure functions of their "
        "seed, so retries cannot change results)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell deadline; a worker that misses it is presumed "
        "wedged, terminated, and the cell re-runs elsewhere "
        "(default: no deadline)",
    )
    parser.add_argument(
        "--on-failure",
        choices=["raise", "skip", "serial"],
        default="raise",
        help="what to do with cells that exhaust their retry budget: "
        "abort the sweep (raise, default), drop the samples (skip), "
        "or re-run the quarantined cells serially in-process (serial)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_summary.json",
        help="where 'bench' writes its JSON summary",
    )
    parser.add_argument(
        "--backend",
        choices=["sets", "bitset", "words"],
        default="sets",
        help="gossip update-store backend (bitset: packed rows, "
        "identical results, ~2.8x faster single-core at scale; words: "
        "fixed-width word arrays with batched phase sweeps, required "
        "for --memory shared)",
    )
    parser.add_argument(
        "--memory",
        choices=["heap", "shared"],
        default="heap",
        help="where the words backend keeps its rows: process-private "
        "heap, or a multiprocessing shared-memory block that sharded "
        "worker processes mutate in place (requires --backend words; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="sharded gossip execution: partition each round's "
        "exchange/push phases into this many shards (0 = classic "
        "unsharded schedule; results are identical for any k >= 1). "
        "Unlike --jobs, which splits the sweep grid across processes, "
        "--shards splits one simulation's rounds; 'bench' also uses it "
        "as the shard_bench worker count (default 4 — changing it "
        "changes the shard_bench timings, so keep it fixed across "
        "runs you intend to bench-diff)",
    )
    parser.add_argument(
        "--schedule",
        choices=["rounds", "event"],
        default="rounds",
        help="gossip schedule: the paper's synchronous rounds, or the "
        "virtual-time event engine (required for --latency/--loss/"
        "--churn; bit-identical to rounds when the network is ideal)",
    )
    parser.add_argument(
        "--latency",
        type=_parse_latency,
        default=None,
        metavar="SPEC",
        help="per-message latency in round units: MEAN (fixed), "
        "KIND:MEAN, or uniform:MEAN:JITTER "
        "(kinds: fixed, uniform, exponential)",
    )
    parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="probability an individual message is dropped in flight",
    )
    parser.add_argument(
        "--churn",
        type=_parse_churn,
        default=None,
        metavar="SPEC",
        help="node churn as per-node Poisson rates: LEAVE or LEAVE:JOIN "
        "(per node per round unit; rejoining nodes bootstrap from a "
        "live correct node)",
    )
    parser.add_argument(
        "--grid",
        type=_parse_grid,
        default=None,
        help="comma-separated grid values for the sweep-* commands",
    )
    parser.add_argument(
        "--metric",
        default=None,
        help="result field the sweep-* commands report "
        "(default: per-model headline metric)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        help="bench-diff/bench-trend: tolerated relative "
        "wall-clock/speedup regression before failing "
        "(default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--history-dir",
        default=".bench-history",
        help="bench-trend: rolling-history directory for bench "
        "artifacts (default .bench-history)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=10,
        help="bench-trend: artifacts kept in the rolling history "
        "(default 10)",
    )
    parser.add_argument(
        "--scale-nodes",
        type=_parse_scale_nodes,
        default=None,
        metavar="N,N",
        help="population sizes the bench/scale-bench scale sweep "
        "measures (comma-separated; default: the tracked points — "
        "100000 under --fast, plus 1000000 on the full profile — "
        "so trend baselines stay comparable)",
    )
    parser.add_argument(
        "--scale-rounds",
        type=int,
        default=12,
        help="steady-state rounds timed per scale-sweep point "
        "(default 12)",
    )
    parser.add_argument(
        "--min-sustained",
        type=int,
        default=3,
        help="bench-trend: consecutive bad run-to-run steps required "
        "before drift is flagged (default 3)",
    )
    parser.add_argument(
        "command",
        choices=[
            "table1", "figure1", "figure2", "figure3",
            "tokenmodel", "scrip", "bittorrent",
            "sweep-gossip", "sweep-scrip", "sweep-token", "sweep-swarm",
            "bench", "scale-bench", "bench-diff", "bench-trend", "lint",
        ],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "previous",
        nargs="?",
        default="BENCH_previous.json",
        help="bench-diff: the previous run's summary JSON",
    )
    parser.add_argument(
        "current",
        nargs="?",
        default="BENCH_summary.json",
        help="bench-diff/bench-trend: the current run's summary JSON",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    # `lint` has its own positionals (paths...), which the experiment
    # parser's `previous`/`current` slots would swallow — route it to a
    # dedicated parser before the main one sees the argv.
    if raw and raw[0] == "lint":
        return _cmd_lint(raw[1:])
    parser = _build_parser()
    args = parser.parse_args(raw)
    commands: Dict[str, Callable[[argparse.Namespace], int]] = {
        "table1": _cmd_table1,
        "figure1": lambda a: _figure_command(figure1, a),
        "figure2": lambda a: _figure_command(figure2, a),
        "figure3": lambda a: _figure_command(figure3, a),
        "tokenmodel": _cmd_tokenmodel,
        "scrip": _cmd_scrip,
        "bittorrent": _cmd_bittorrent,
        "sweep-gossip": _cmd_sweep,
        "sweep-scrip": _cmd_sweep,
        "sweep-token": _cmd_sweep,
        "sweep-swarm": _cmd_sweep,
        "bench": _cmd_bench,
        "scale-bench": _cmd_scale_bench,
        "bench-diff": _cmd_bench_diff,
        "bench-trend": _cmd_bench_trend,
        # Reached only when global flags precede the word `lint`
        # (otherwise the fast-path above routed it with its paths).
        "lint": lambda a: _cmd_lint([]),
    }
    try:
        return commands[args.command](args)
    except (ReproError, OSError) as error:
        # Bad flag combinations and unwritable cache dirs surface here;
        # a traceback would bury the one line the user needs.
        print(f"lotus-eater: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
