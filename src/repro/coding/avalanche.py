"""Avalanche-style coded gossip: the network-coding defense.

Section 4: "Another approach is to use ideas from network coding, as
done by Avalanche, to change the requirements so that nodes need to
collect only enough independent tokens to reconstruct the full
information rather than the complete set of tokens."

The defense kills the *rare-token* lotus-eater attack: when the source
seeds random GF(2) combinations instead of raw tokens, no identifiable
token is rare — every seeded vector mixes all dimensions, so there is
no small set of nodes whose satiation denies anything.  Satiating any
one node costs the attacker the same as before and buys him nothing.

:class:`CodedGossipSimulator` mirrors the abstract token model's
dynamics (contacts, satiation stops service, altruism ``a``) but nodes
hold coded vectors and transmit fresh random combinations of what they
have, and satiation is full GF(2) rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..core.engine import RoundSimulator
from ..core.errors import ConfigurationError
from ..core.rng import RngStreams
from .gf2 import combine, random_coded_tokens

__all__ = ["Gf2Basis", "CodedGossipSimulator", "CodedRunSummary", "run_coded_experiment"]


class Gf2Basis:
    """An incremental GF(2) row basis with O(d) insertion per vector.

    Rows are kept in echelon form indexed by pivot column, so checking
    whether a new vector is innovative (increases rank) is a single
    reduction pass.
    """

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ConfigurationError(f"dimension must be positive, got {dimension}")
        self.dimension = dimension
        self._rows: Dict[int, np.ndarray] = {}

    @property
    def rank(self) -> int:
        """Current rank of the held vectors."""
        return len(self._rows)

    @property
    def full(self) -> bool:
        """Whether the basis spans the whole space (node can decode)."""
        return self.rank >= self.dimension

    def insert(self, vector: Sequence[int]) -> bool:
        """Reduce ``vector`` against the basis; keep it if innovative.

        Returns True iff the vector increased the rank.
        """
        reduced = np.array(vector, dtype=np.uint8)
        if reduced.shape != (self.dimension,):
            raise ConfigurationError(
                f"vector has length {reduced.shape}, expected {self.dimension}"
            )
        while True:
            nonzero = np.nonzero(reduced)[0]
            if nonzero.size == 0:
                return False
            pivot = int(nonzero[0])
            if pivot not in self._rows:
                self._rows[pivot] = reduced
                return True
            reduced = reduced ^ self._rows[pivot]

    def vectors(self) -> List[Tuple[int, ...]]:
        """The held basis rows (span-equivalent to everything received)."""
        return [
            tuple(int(bit) for bit in row)
            for _, row in sorted(self._rows.items())
        ]


class CodedGossipSimulator(RoundSimulator):
    """Token-model dynamics over coded tokens.

    Parameters
    ----------
    graph:
        Communication graph.
    dimension:
        Number of source tokens the combinations encode.
    seeded_nodes:
        Nodes the source gives initial coded tokens to.
    vectors_per_seed:
        Coded tokens each seeded node starts with.
    contacts_per_round / altruism:
        As in the abstract token model (``c`` and ``a``).
    """

    def __init__(
        self,
        graph: nx.Graph,
        dimension: int,
        seeded_nodes: Sequence[int],
        vectors_per_seed: int = 2,
        contacts_per_round: int = 1,
        altruism: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not nx.is_connected(graph):
            raise ConfigurationError("graph must be connected")
        if not seeded_nodes:
            raise ConfigurationError("at least one node must be seeded")
        unknown = [node for node in seeded_nodes if node not in graph]
        if unknown:
            raise ConfigurationError(f"seeded nodes not in graph: {unknown}")
        if vectors_per_seed < 1:
            raise ConfigurationError(
                f"vectors_per_seed must be >= 1, got {vectors_per_seed}"
            )
        if not 0.0 <= altruism <= 1.0:
            raise ConfigurationError(f"altruism must be in [0, 1], got {altruism}")
        streams = RngStreams(seed)
        self._seed_rng = streams.get("seeding")
        self._contact_rng = streams.get("contacts")
        self._altruism_rng = streams.get("altruism")
        self._code_rng = streams.get("coding")
        self.graph = graph
        self.dimension = dimension
        self.contacts_per_round = contacts_per_round
        self.altruism = altruism
        self.bases: Dict[int, Gf2Basis] = {
            node: Gf2Basis(dimension) for node in graph.nodes
        }
        self.attacker_satiated: Set[int] = set()
        self.satiated_at: Dict[int, int] = {}
        self._round = 0
        for node in seeded_nodes:
            for vector in random_coded_tokens(self._seed_rng, dimension, vectors_per_seed):
                self.bases[node].insert(vector)
            self._note_satiation(node)
        # Collective decodability: the union of seeds must span the
        # space, or nobody can ever finish.
        union = Gf2Basis(dimension)
        for node in seeded_nodes:
            for vector in self.bases[node].vectors():
                union.insert(vector)
        if not union.full:
            raise ConfigurationError(
                "seeded combinations do not span the space; increase "
                "vectors_per_seed or seed more nodes"
            )

    @property
    def round(self) -> int:
        return self._round

    def is_satiated(self, node: int) -> bool:
        """Whether ``node`` can decode (full rank) — and stops serving."""
        return self.bases[node].full

    def _note_satiation(self, node: int) -> None:
        if self.bases[node].full and node not in self.satiated_at:
            self.satiated_at[node] = self._round

    def satiated_fraction(self) -> float:
        """Fraction of nodes that can decode."""
        total = self.graph.number_of_nodes()
        return sum(1 for node in self.bases if self.is_satiated(node)) / total

    def all_satiated(self) -> bool:
        return all(basis.full for basis in self.bases.values())

    def satiate(self, node: int) -> None:
        """Attacker action: hand ``node`` a full-rank set instantly."""
        basis = self.bases[node]
        for index in range(self.dimension):
            unit = [0] * self.dimension
            unit[index] = 1
            basis.insert(unit)
        self.attacker_satiated.add(node)
        self._note_satiation(node)

    def step(self) -> None:
        for node in sorted(self.bases):
            if self.is_satiated(node):
                continue  # satiation-compatible: decoders stop gossiping
            neighbors = sorted(self.graph.neighbors(node))
            if not neighbors:
                continue
            count = min(self.contacts_per_round, len(neighbors))
            picks = self._contact_rng.choice(len(neighbors), size=count, replace=False)
            for pick in picks:
                self._contact(node, neighbors[int(pick)])
        self._round += 1

    def _contact(self, initiator: int, partner: int) -> None:
        """Exchange one fresh random combination in each direction."""
        if self.is_satiated(partner):
            if self._altruism_rng.random() >= self.altruism:
                return
        for sender, receiver in ((partner, initiator), (initiator, partner)):
            held = self.bases[sender].vectors()
            if not held:
                continue
            self.bases[receiver].insert(combine(self._code_rng, held))
            self._note_satiation(receiver)


@dataclass(frozen=True)
class CodedRunSummary:
    """Summary of one coded-gossip experiment."""

    rounds_run: int
    decodable: int
    starving: int
    n_nodes: int
    completion_round: Optional[int]
    mean_rank_of_starving: float


def run_coded_experiment(
    simulator: CodedGossipSimulator,
    attack_targets: Sequence[int] = (),
    max_rounds: int = 300,
) -> CodedRunSummary:
    """Satiate ``attack_targets`` every round and run to completion.

    The rare-token comparison: in the plain token model the same
    targeting (the unique holder of a token) starves the entire
    system; here it changes essentially nothing, because every node's
    transmissions re-mix all dimensions.
    """
    completion: Optional[int] = None
    for _ in range(max_rounds):
        for target in attack_targets:
            simulator.satiate(target)
        simulator.step()
        if simulator.all_satiated():
            completion = simulator.round
            break
    starving = [
        node for node in sorted(simulator.bases) if not simulator.is_satiated(node)
    ]
    ranks = [simulator.bases[node].rank for node in starving]
    return CodedRunSummary(
        rounds_run=simulator.round,
        decodable=simulator.graph.number_of_nodes() - len(starving),
        starving=len(starving),
        n_nodes=simulator.graph.number_of_nodes(),
        completion_round=completion,
        mean_rank_of_starving=(sum(ranks) / len(ranks)) if ranks else float(simulator.dimension),
    )
