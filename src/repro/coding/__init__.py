"""Network-coding defense (paper Section 4, Avalanche-style).

GF(2) linear algebra plus a coded-token variant of the abstract token
model: nodes are satiated once they hold enough *independent*
combinations to decode, rather than the exact token set, which defuses
rare-token lotus-eater attacks.
"""

from .avalanche import (
    CodedGossipSimulator,
    CodedRunSummary,
    Gf2Basis,
    run_coded_experiment,
)
from .gf2 import (
    as_gf2_matrix,
    combine,
    is_full_rank,
    random_coded_tokens,
    random_nonzero_vector,
    rank,
    rank_of_vectors,
    row_reduce,
    solve,
)

__all__ = [
    "CodedGossipSimulator",
    "CodedRunSummary",
    "Gf2Basis",
    "run_coded_experiment",
    "as_gf2_matrix",
    "row_reduce",
    "rank",
    "rank_of_vectors",
    "is_full_rank",
    "solve",
    "random_nonzero_vector",
    "random_coded_tokens",
    "combine",
]
