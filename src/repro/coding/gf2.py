"""Linear algebra over GF(2) for the network-coding defense.

Section 4 of the paper points to Avalanche-style network coding as a
way to make satiation hard: "change the requirements so that nodes
need to collect only enough independent tokens to reconstruct the full
information rather than the complete set of tokens".

We implement the minimal algebra that defense needs — rank, row
reduction, solvability, and random full-rank combination sampling —
over bit vectors stored as ``numpy`` uint8 arrays.  Everything is pure
and deterministic given an explicit generator.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "as_gf2_matrix",
    "row_reduce",
    "rank",
    "rank_of_vectors",
    "is_full_rank",
    "solve",
    "random_nonzero_vector",
    "random_coded_tokens",
    "combine",
]


def as_gf2_matrix(rows: Iterable[Sequence[int]], width: Optional[int] = None) -> np.ndarray:
    """Build a GF(2) matrix (dtype uint8, entries 0/1) from bit rows.

    Raises
    ------
    ConfigurationError
        If rows have inconsistent widths or non-binary entries.
    """
    row_list = [list(row) for row in rows]
    if not row_list:
        if width is None:
            raise ConfigurationError("cannot infer width of an empty matrix")
        return np.zeros((0, width), dtype=np.uint8)
    inferred = len(row_list[0])
    if width is not None and inferred != width:
        raise ConfigurationError(f"row width {inferred} does not match width {width}")
    try:
        matrix = np.array(row_list, dtype=np.int64)
    except ValueError as error:  # ragged rows
        raise ConfigurationError(
            f"rows must form a rectangular matrix: {error}"
        ) from error
    if matrix.ndim != 2 or (width is not None and matrix.shape[1] != width):
        raise ConfigurationError("rows must form a rectangular matrix")
    if not np.isin(matrix, (0, 1)).all():
        raise ConfigurationError("GF(2) matrix entries must be 0 or 1")
    return matrix.astype(np.uint8)


def row_reduce(matrix: np.ndarray) -> Tuple[np.ndarray, List[int]]:
    """Row-reduce ``matrix`` over GF(2).

    Returns the reduced matrix (row echelon, pivots normalized to the
    leftmost 1 of each row, entries above pivots cleared) and the list
    of pivot column indices.  The input is not modified.
    """
    reduced = matrix.copy().astype(np.uint8)
    n_rows, n_cols = reduced.shape
    pivots: List[int] = []
    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        candidates = np.nonzero(reduced[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        swap = pivot_row + int(candidates[0])
        if swap != pivot_row:
            reduced[[pivot_row, swap]] = reduced[[swap, pivot_row]]
        # Clear every other 1 in this column (both above and below).
        ones = np.nonzero(reduced[:, col])[0]
        for row in ones:
            if row != pivot_row:
                reduced[row] ^= reduced[pivot_row]
        pivots.append(col)
        pivot_row += 1
    return reduced, pivots


def rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2)."""
    if matrix.size == 0:
        return 0
    _, pivots = row_reduce(matrix)
    return len(pivots)


def rank_of_vectors(vectors: Iterable[Sequence[int]], dimension: int) -> int:
    """Rank of a collection of bit vectors of length ``dimension``."""
    matrix = as_gf2_matrix(vectors, width=dimension)
    return rank(matrix)


def is_full_rank(vectors: Iterable[Sequence[int]], dimension: int) -> bool:
    """Whether ``vectors`` span GF(2)^dimension (i.e. a node can decode)."""
    return rank_of_vectors(vectors, dimension) >= dimension


def solve(matrix: np.ndarray, rhs: np.ndarray) -> Optional[np.ndarray]:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Returns one solution vector, or None when the system is
    inconsistent.  Free variables are set to 0.
    """
    if matrix.shape[0] != rhs.shape[0]:
        raise ConfigurationError(
            f"shape mismatch: matrix has {matrix.shape[0]} rows, rhs has {rhs.shape[0]}"
        )
    augmented = np.concatenate(
        [matrix.astype(np.uint8), rhs.reshape(-1, 1).astype(np.uint8)], axis=1
    )
    reduced, pivots = row_reduce(augmented)
    n_cols = matrix.shape[1]
    # Inconsistent iff a pivot landed in the augmented column.
    if pivots and pivots[-1] == n_cols:
        return None
    solution = np.zeros(n_cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, n_cols]
    return solution


def random_nonzero_vector(rng: np.random.Generator, dimension: int) -> Tuple[int, ...]:
    """A uniformly random non-zero bit vector of length ``dimension``."""
    if dimension <= 0:
        raise ConfigurationError(f"dimension must be positive, got {dimension}")
    while True:
        vector = rng.integers(0, 2, size=dimension, dtype=np.uint8)
        if vector.any():
            return tuple(int(bit) for bit in vector)


def random_coded_tokens(
    rng: np.random.Generator, dimension: int, count: int
) -> List[Tuple[int, ...]]:
    """Sample ``count`` random non-zero coded tokens (coefficient vectors)."""
    return [random_nonzero_vector(rng, dimension) for _ in range(count)]


def combine(
    rng: np.random.Generator, held: Sequence[Tuple[int, ...]]
) -> Tuple[int, ...]:
    """A random GF(2) combination of the held coded tokens.

    This is what a coding node transmits: a fresh random combination of
    everything it has, rather than any single source token.  The
    combination is guaranteed non-zero when ``held`` contains at least
    one non-zero vector (we resample the coefficients until the result
    is non-zero).
    """
    if not held:
        raise ConfigurationError("cannot combine an empty set of tokens")
    matrix = as_gf2_matrix(held)
    for _ in range(64):
        coefficients = rng.integers(0, 2, size=len(held), dtype=np.uint8)
        if not coefficients.any():
            continue
        combined = (coefficients @ matrix) % 2
        if combined.any():
            return tuple(int(bit) for bit in combined)
    # All held vectors may be zero; fall back to the first vector.
    return tuple(int(bit) for bit in matrix[0])
