"""Agent strategies in the scrip economy.

Three strategy classes from the scrip-system literature the paper
draws on:

* :class:`ThresholdAgent` — the rational optimum: "choose a threshold
  and provide service only when he has less than that threshold amount
  of scrip".  At or above threshold the agent is *satiated* and stops
  serving — the lotus-eater attack surface.
* :class:`AltruistAgent` — always willing to serve and charges
  nothing.  A few altruists are harmless; too many "can cause what
  would otherwise be a thriving economy to crash" (Section 4's caution
  about free service), because free service removes the incentive to
  hold scrip at all.
* :class:`HoarderAgent` — earns but never spends; drains money from
  circulation (from Kash et al.'s "hoarders").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..core.errors import ConfigurationError

__all__ = ["ScripAgent", "ThresholdAgent", "AltruistAgent", "HoarderAgent"]


@dataclass
class ScripAgent(abc.ABC):
    """Base agent: a balance, cumulative utility, and a strategy.

    ``capabilities`` is the set of resource types the agent can serve;
    ``None`` means every type.  Rare capabilities are the high-value
    lotus-eater targets: "by targeting a user or users who control
    important or rare resources, the attacker could prevent all users
    from receiving certain kinds of services".
    """

    agent_id: int
    balance: int = 0
    utility: float = 0.0
    services_provided: int = 0
    services_received: int = 0
    capabilities: Optional[FrozenSet[int]] = None

    def can_serve(self, resource_type: int) -> bool:
        """Whether the agent is capable of serving ``resource_type``."""
        return self.capabilities is None or resource_type in self.capabilities

    @abc.abstractmethod
    def volunteers(self, price: int) -> bool:
        """Whether the agent offers to serve the current request."""

    @abc.abstractmethod
    def charges(self) -> bool:
        """Whether the agent takes payment when it serves."""

    def wants_service(self, price: int) -> bool:
        """Whether the agent requests service when it has a need.

        Default: request whenever the agent can pay (or free service
        may be available — the simulator routes that case).
        """
        return True

    @property
    def is_satiated(self) -> bool:
        """Whether the agent currently refuses to provide service."""
        return not self.volunteers(price=1)

    def credit(self, amount: int) -> None:
        """Receive scrip (payment or attacker gift)."""
        if amount < 0:
            raise ConfigurationError(f"credit amount must be >= 0, got {amount}")
        self.balance += amount

    def debit(self, amount: int) -> None:
        """Pay scrip; balances never go negative."""
        if amount < 0:
            raise ConfigurationError(f"debit amount must be >= 0, got {amount}")
        if amount > self.balance:
            raise ConfigurationError(
                f"agent {self.agent_id} cannot pay {amount} with balance {self.balance}"
            )
        self.balance -= amount


@dataclass
class ThresholdAgent(ScripAgent):
    """Rational agent playing a threshold strategy.

    Volunteers exactly while ``balance < threshold``; with
    ``threshold`` scrip in hand its monetary demands are met — it is
    satiated and provides nothing until it spends back below the
    threshold.
    """

    threshold: int = 4

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {self.threshold}")

    def volunteers(self, price: int) -> bool:
        return self.balance < self.threshold

    def charges(self) -> bool:
        return True


@dataclass
class AltruistAgent(ScripAgent):
    """Always serves, never charges (and never needs to hold scrip)."""

    def volunteers(self, price: int) -> bool:
        return True

    def charges(self) -> bool:
        return False

    @property
    def is_satiated(self) -> bool:
        """Altruists are never satiated — the ``a > 0`` of Section 3."""
        return False


@dataclass
class HoarderAgent(ScripAgent):
    """Serves whenever able and charges, but never spends.

    Hoarders drain scrip from circulation: every coin they earn is
    gone.  With enough hoarding the circulating supply collapses and
    so does trade — a non-adversarial failure mode with the same
    signature as the money-injection attack (fewer unsatiated
    providers per request).
    """

    def volunteers(self, price: int) -> bool:
        return True

    def charges(self) -> bool:
        return True

    def wants_service(self, price: int) -> bool:
        return False  # never spends, therefore never requests paid service
