"""Lotus-eater attacks on the scrip economy.

"If an attacker can ensure that an agent has a large amount of money
(either by giving money away, or providing cheap service to him), the
agent will stop providing service.  By targeting a user or users who
control important or rare resources, the attacker could prevent all
users from receiving certain kinds of services."

Two attacker strategies:

* :class:`MoneyInjectionAttack` — outright gifts: top chosen targets
  up to (at least) their threshold every round.  Simple, but the
  attacker needs a scrip source; the amount minted is tracked so the
  fixed-money-supply defense argument can be quantified.
* :class:`FreeServiceAttack` — the subtler variant: the attacker
  serves the targets' requests for free, so the targets never spend —
  their balances never drop below threshold once there.  No scrip is
  minted; the attacker pays in service, not money.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..core.errors import ConfigurationError
from .system import ScripSystem

__all__ = ["MoneyInjectionAttack", "FreeServiceAttack"]


class MoneyInjectionAttack:
    """Keep chosen agents' balances at or above their satiation point.

    Parameters
    ----------
    targets:
        Agent ids to satiate.
    top_up_to:
        Balance to maintain on each target; to satiate a
        :class:`~repro.scrip.agents.ThresholdAgent` this must be at
        least its threshold.
    budget:
        The attacker's scrip war chest.  In a real scrip system the
        attacker must first *earn* (or buy) the scrip he gives away,
        and the fixed money supply bounds how much that can be — the
        Section 4 defense.  ``None`` models an attacker who can mint
        scrip (a broken system); note that unbounded injection
        inflates *every* agent to its threshold through normal trade
        and collapses the whole economy, not just the targets.
    """

    def __init__(
        self, targets: Iterable[int], top_up_to: int, budget: Optional[int] = None
    ) -> None:
        self.targets: Set[int] = set(targets)
        if not self.targets:
            raise ConfigurationError("must target at least one agent")
        if top_up_to < 1:
            raise ConfigurationError(f"top_up_to must be >= 1, got {top_up_to}")
        if budget is not None and budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        self.top_up_to = top_up_to
        self.budget = budget
        self.total_injected = 0

    def remaining_budget(self) -> Optional[int]:
        """Scrip the attacker can still spend (None = unlimited)."""
        if self.budget is None:
            return None
        return self.budget - self.total_injected

    def install(self, system: ScripSystem) -> None:
        """Attach the attack to a system (runs before every round)."""
        bad = [t for t in self.targets if not 0 <= t < len(system.agents)]
        if bad:
            raise ConfigurationError(f"unknown target agents: {sorted(bad)}")
        system.pre_round_hooks.append(self._on_round)

    def _on_round(self, round_now: int, system: ScripSystem) -> None:
        for target in sorted(self.targets):
            balance = system.agents[target].balance
            if balance >= self.top_up_to:
                continue
            amount = self.top_up_to - balance
            remaining = self.remaining_budget()
            if remaining is not None:
                amount = min(amount, remaining)
            if amount <= 0:
                continue
            system.inject(target, amount)
            self.total_injected += amount


class FreeServiceAttack:
    """Serve targets' requests for free so they never spend scrip.

    Implemented as a hook that refunds a target's payments: whenever a
    target paid for service last round, the attacker covers the bill
    (gives the target the price back out of the attacker's own pocket,
    modelled as an injection bounded by ``budget``).  Combined with an
    initial one-time top-up, targets sit at their threshold forever.

    The paper's point is that this costs the attacker *service*, not
    system money; ``budget`` caps the attacker's spend so experiments
    can study partially funded attacks.
    """

    def __init__(
        self, targets: Iterable[int], budget: int = 10**9, initial_top_up: int = 0
    ) -> None:
        self.targets: Set[int] = set(targets)
        if not self.targets:
            raise ConfigurationError("must target at least one agent")
        if budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        self.budget = budget
        self.initial_top_up = initial_top_up
        self.spent = 0
        self._installed = False

    def install(self, system: ScripSystem) -> None:
        """Attach the attack to a system (runs before every round)."""
        bad = [t for t in self.targets if not 0 <= t < len(system.agents)]
        if bad:
            raise ConfigurationError(f"unknown target agents: {sorted(bad)}")
        system.pre_round_hooks.append(self._on_round)

    def _remaining(self) -> int:
        return self.budget - self.spent

    def _on_round(self, round_now: int, system: ScripSystem) -> None:
        if not self._installed:
            self._installed = True
            for target in sorted(self.targets):
                top_up = min(self.initial_top_up, self._remaining())
                if top_up > 0:
                    system.inject(target, top_up)
                    self.spent += top_up
        # Refund any payment a target made last round.
        if not system.history:
            return
        last = system.history[-1]
        if last.paid and last.requester in self.targets and self._remaining() > 0:
            refund = min(system.config.price, self._remaining())
            system.inject(last.requester, refund)
            self.spent += refund


def satiation_budget(n_targets: int, threshold: int, initial_balance: int) -> int:
    """Marginal scrip to *push* ``n_targets`` agents up to threshold.

    This is the attacker's immediate outlay starting from a fresh
    economy.  The binding long-run constraint is
    :func:`satiation_holdings`: satiated agents must keep holding the
    money, and the fixed supply caps how many can do so at once.
    """
    if n_targets < 0:
        raise ConfigurationError(f"n_targets must be >= 0, got {n_targets}")
    per_target = max(0, threshold - initial_balance)
    return n_targets * per_target


def satiation_holdings(n_targets: int, threshold: int) -> int:
    """Scrip that must be *held* for ``n_targets`` agents to stay satiated.

    The quantitative core of the fixed-money-supply defense (paper
    Section 4): a threshold agent is satiated only while holding
    ``threshold`` scrip, so keeping a fraction ``f`` of an ``n``-agent
    economy satiated pins ``f * n * threshold`` scrip — which for
    large ``f`` "may not even be enough money in the system".
    """
    if n_targets < 0:
        raise ConfigurationError(f"n_targets must be >= 0, got {n_targets}")
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    return n_targets * threshold
