"""Scrip-system substrate and money-based lotus-eater attacks.

Threshold agents stop serving once their scrip balance reaches their
threshold — the satiation the attacker exploits with gifts
(:class:`MoneyInjectionAttack`) or free service
(:class:`FreeServiceAttack`).  The fixed money supply bounds how much
of the system can be satiated at once, the Section 4 defense.
"""

from .agents import AltruistAgent, HoarderAgent, ScripAgent, ThresholdAgent
from .analysis import (
    EconomyReport,
    altruist_sweep,
    best_response_threshold,
    measure_economy,
)
from .attacks import (
    FreeServiceAttack,
    MoneyInjectionAttack,
    satiation_budget,
    satiation_holdings,
)
from .config import ScripConfig
from .system import (
    RoundOutcome,
    ScripSystem,
    build_agents,
    build_rare_resource_agents,
)

__all__ = [
    "ScripConfig",
    "ScripSystem",
    "RoundOutcome",
    "build_agents",
    "build_rare_resource_agents",
    "ScripAgent",
    "ThresholdAgent",
    "AltruistAgent",
    "HoarderAgent",
    "MoneyInjectionAttack",
    "FreeServiceAttack",
    "satiation_budget",
    "satiation_holdings",
    "EconomyReport",
    "measure_economy",
    "best_response_threshold",
    "altruist_sweep",
]
