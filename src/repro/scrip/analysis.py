"""Analysis of scrip economies: service quality, equilibrium thresholds.

Includes a simulation-based best-response search justifying the
threshold strategies the paper assumes ("an optimal strategy for a
rational agent in such a system is to choose a threshold and provide
service only when he has less than that threshold amount of scrip"),
and the welfare comparison behind the altruist-crash caution of
Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.errors import AnalysisError
from .agents import AltruistAgent, ThresholdAgent
from .config import ScripConfig
from .system import ScripSystem, build_agents

__all__ = [
    "EconomyReport",
    "measure_economy",
    "best_response_threshold",
    "altruist_sweep",
]


@dataclass(frozen=True)
class EconomyReport:
    """Aggregate health of an economy after a run."""

    rounds: int
    service_rate: float
    free_service_share: float
    satiated_fraction: float
    mean_utility: float
    money_supply: int
    injected_scrip: int


def measure_economy(
    system: ScripSystem, rounds: int, warmup: int = 0
) -> EconomyReport:
    """Run ``rounds`` rounds and report steady-state health.

    ``warmup`` rounds run first and are excluded from the service-rate
    measurement (the economy needs a few rounds to mix balances).
    """
    if rounds <= 0:
        raise AnalysisError(f"rounds must be positive, got {rounds}")
    for _ in range(warmup):
        system.step()
    served_before, requests_before = system.served, system.requests
    free_before = system.served_free
    for _ in range(rounds):
        system.step()
    requests = system.requests - requests_before
    served = system.served - served_before
    free = system.served_free - free_before
    mean_utility = sum(agent.utility for agent in system.agents) / len(system.agents)
    return EconomyReport(
        rounds=rounds,
        service_rate=served / requests if requests else 1.0,
        free_service_share=free / served if served else 0.0,
        satiated_fraction=system.satiated_fraction(),
        mean_utility=mean_utility,
        money_supply=system.total_money(),
        injected_scrip=system.injected_scrip,
    )


def _utility_of_threshold(
    config: ScripConfig,
    candidate: int,
    population_threshold: int,
    rounds: int,
    seed: int,
    discount: float,
) -> float:
    """Discounted utility of agent 0 playing ``candidate`` against a
    population playing ``population_threshold``.

    Discounting matters: working costs ``alpha`` now while the earned
    scrip buys ``gamma`` only when it is eventually spent, so an agent
    hoarding far beyond its spending rate destroys value.  This is the
    standard total discounted utility of the EC'07 model.
    """
    agents = build_agents(config.replace(threshold=population_threshold))
    agents[0] = ThresholdAgent(
        agent_id=0, balance=config.initial_balance, threshold=candidate
    )
    system = ScripSystem(config, agents=agents, seed=seed)
    total = 0.0
    weight = 1.0
    previous = 0.0
    for _ in range(rounds):
        system.step()
        current = system.agents[0].utility
        total += weight * (current - previous)
        previous = current
        weight *= discount
    return total


def best_response_threshold(
    config: ScripConfig,
    population_threshold: Optional[int] = None,
    candidates: Optional[Sequence[int]] = None,
    rounds: int = 20000,
    seed: int = 0,
    discount: float = 0.999,
) -> Dict[int, float]:
    """Simulated discounted utility of each candidate threshold.

    Everyone else plays ``population_threshold`` (default: the
    config's); the deviator tries each candidate.  Returns
    ``{candidate: discounted utility}``; the argmax is the (simulated)
    best response.  With sensible parameters the best response is
    interior — neither 1 (too little buffer; misses service when
    broke) nor huge (paying ``alpha`` today for scrip that will not be
    spent for a long, heavily discounted time) — which is the
    threshold-strategy structure the paper's argument rests on.
    """
    if population_threshold is None:
        population_threshold = config.threshold
    if candidates is None:
        candidates = range(1, 3 * config.threshold + 1)
    if not 0.0 < discount <= 1.0:
        raise AnalysisError(f"discount must be in (0, 1], got {discount}")
    return {
        candidate: _utility_of_threshold(
            config, candidate, population_threshold, rounds, seed, discount
        )
        for candidate in candidates
    }


def altruist_sweep(
    config: ScripConfig,
    altruist_counts: Sequence[int],
    rounds: int = 20000,
    warmup: int = 2000,
    seed: int = 0,
) -> List[EconomyReport]:
    """Economy health as the altruist share grows.

    Exhibits the Section 4 trade-off: altruists raise the service rate
    (they are never satiated — a live ``a > 0``), but they crowd out
    the paid economy: the free-service share rises and rational agents
    stop earning.  Kash et al. showed that mishandled altruists "can
    cause what would otherwise be a thriving economy to crash"; here
    the crash shows up as the paid sector's volume collapsing while
    total service quality is capped by what the altruists can carry.
    """
    reports = []
    for count in altruist_counts:
        agents = build_agents(config, altruists=count)
        system = ScripSystem(config, agents=agents, seed=seed)
        reports.append(measure_economy(system, rounds=rounds, warmup=warmup))
    return reports
