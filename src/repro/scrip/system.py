"""The scrip-economy round simulator.

Each round (following the EC'07 model the paper cites):

1. one agent, chosen uniformly, has a need;
2. every *other* agent is able to serve it with probability
   ``ability``; among the able, those whose strategy volunteers at the
   current price make offers;
3. the requester prefers a free offer (altruists) over a paid one —
   why pay? — and otherwise picks a paid volunteer uniformly, pays
   ``price`` scrip, and both sides book their utilities;
4. if nobody volunteers (everyone able is satiated, or the requester
   cannot pay), the request goes unserved — the system-level damage a
   lotus-eater attack causes here.

Money conservation is an invariant: scrip only moves between agents;
only an attacker's injection (via :mod:`repro.scrip.attacks`) changes
the total, and the simulator tracks injected amounts separately so
tests can assert conservation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.engine import RoundSimulator
from ..core.errors import ConfigurationError
from ..core.rng import RngStreams
from .agents import AltruistAgent, ScripAgent, ThresholdAgent
from .config import ScripConfig

__all__ = ["ScripSystem", "RoundOutcome", "build_agents", "build_rare_resource_agents"]


@dataclass(frozen=True)
class RoundOutcome:
    """What happened in one round of the economy."""

    requester: int
    server: Optional[int]
    paid: bool
    volunteers: int
    resource_type: int = 0

    @property
    def served(self) -> bool:
        return self.server is not None


def build_agents(
    config: ScripConfig,
    altruists: int = 0,
    hoarders: int = 0,
) -> List[ScripAgent]:
    """Standard population: threshold agents plus optional extremes.

    Agent ids 0..n-1; altruists take the highest ids, hoarders just
    below them, so the rational majority occupies the low ids (handy
    for targeting in attack experiments).
    """
    from .agents import HoarderAgent  # local to avoid unused-at-import lint noise

    if altruists < 0 or hoarders < 0:
        raise ConfigurationError("altruists and hoarders must be >= 0")
    if altruists + hoarders > config.n_agents:
        raise ConfigurationError(
            f"{altruists} altruists + {hoarders} hoarders exceed "
            f"{config.n_agents} agents"
        )
    n_rational = config.n_agents - altruists - hoarders
    agents: List[ScripAgent] = []
    for agent_id in range(n_rational):
        agents.append(
            ThresholdAgent(
                agent_id=agent_id,
                balance=config.initial_balance,
                threshold=config.threshold,
            )
        )
    for agent_id in range(n_rational, n_rational + hoarders):
        agents.append(HoarderAgent(agent_id=agent_id, balance=config.initial_balance))
    for agent_id in range(n_rational + hoarders, config.n_agents):
        agents.append(AltruistAgent(agent_id=agent_id, balance=config.initial_balance))
    return agents


def build_rare_resource_agents(
    config: ScripConfig,
    rare_type: int,
    rare_providers: Sequence[int],
) -> List[ScripAgent]:
    """A population where one resource type has few capable providers.

    All agents can serve every type except ``rare_type``, which only
    the agents in ``rare_providers`` can serve.  These providers are
    the high-value lotus-eater targets: satiating just them denies the
    whole system that resource type.
    """
    if config.n_resource_types < 2:
        raise ConfigurationError(
            "rare-resource economies need n_resource_types >= 2"
        )
    if not 0 <= rare_type < config.n_resource_types:
        raise ConfigurationError(
            f"rare_type {rare_type} out of range for "
            f"{config.n_resource_types} types"
        )
    providers = set(rare_providers)
    if not providers:
        raise ConfigurationError("need at least one rare provider")
    bad = [p for p in sorted(providers) if not 0 <= p < config.n_agents]
    if bad:
        raise ConfigurationError(f"unknown provider agents: {bad}")
    common = frozenset(
        t for t in range(config.n_resource_types) if t != rare_type
    )
    everything = frozenset(range(config.n_resource_types))
    agents: List[ScripAgent] = []
    for agent_id in range(config.n_agents):
        agents.append(
            ThresholdAgent(
                agent_id=agent_id,
                balance=config.initial_balance,
                threshold=config.threshold,
                capabilities=everything if agent_id in providers else common,
            )
        )
    return agents


class ScripSystem(RoundSimulator):
    """One scrip economy under (optional) attack.

    Parameters
    ----------
    config:
        Economy parameters.
    agents:
        Optional pre-built population (defaults to all-rational
        threshold agents).
    seed:
        Root seed for all randomness.
    """

    def __init__(
        self,
        config: ScripConfig,
        agents: Optional[Sequence[ScripAgent]] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.agents: List[ScripAgent] = (
            list(agents) if agents is not None else build_agents(config)
        )
        if len(self.agents) != config.n_agents:
            raise ConfigurationError(
                f"expected {config.n_agents} agents, got {len(self.agents)}"
            )
        streams = RngStreams(seed)
        self._request_rng = streams.get("requests")
        self._ability_rng = streams.get("ability")
        self._choice_rng = streams.get("server-choice")
        self._round = 0
        self.requests = 0
        self.served = 0
        self.served_free = 0
        self.injected_scrip = 0
        self.requests_by_type: Dict[int, int] = {}
        self.served_by_type: Dict[int, int] = {}
        self.history: List[RoundOutcome] = []
        #: Hooks the attack layer installs; called at the start of each
        #: round with (round, system).
        self.pre_round_hooks: List[Callable[[int, "ScripSystem"], None]] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        return self._round

    def total_money(self) -> int:
        """Current scrip in circulation (initial supply + injections)."""
        return sum(agent.balance for agent in self.agents)

    def service_rate(self) -> float:
        """Fraction of requests served so far (1.0 before any request)."""
        if self.requests == 0:
            return 1.0
        return self.served / self.requests

    def satiated_fraction(self) -> float:
        """Fraction of agents currently refusing to provide service."""
        return sum(1 for agent in self.agents if agent.is_satiated) / len(self.agents)

    def balances(self) -> Dict[int, int]:
        """Current balance of every agent."""
        return {agent.agent_id: agent.balance for agent in self.agents}

    def inject(self, agent_id: int, amount: int) -> None:
        """Attacker-only: mint ``amount`` scrip onto one agent.

        Tracked separately so money-conservation tests can distinguish
        trade (conserving) from attack (inflating).
        """
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount}")
        self.agents[agent_id].credit(amount)
        self.injected_scrip += amount

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def service_rate_of_type(self, resource_type: int) -> float:
        """Fraction of requests for one resource type that were served."""
        requests = self.requests_by_type.get(resource_type, 0)
        if requests == 0:
            return 1.0
        return self.served_by_type.get(resource_type, 0) / requests

    def step(self) -> None:
        round_now = self._round
        for hook in self.pre_round_hooks:
            hook(round_now, self)
        requester_id = int(self._request_rng.integers(len(self.agents)))
        resource_type = int(
            self._request_rng.choice(
                self.config.n_resource_types,
                p=self.config.normalized_type_weights(),
            )
        )
        requester = self.agents[requester_id]
        outcome = self._serve_request(requester, resource_type)
        self.history.append(outcome)
        self.requests += 1
        self.requests_by_type[resource_type] = (
            self.requests_by_type.get(resource_type, 0) + 1
        )
        if outcome.served:
            self.served += 1
            self.served_by_type[resource_type] = (
                self.served_by_type.get(resource_type, 0) + 1
            )
            if not outcome.paid:
                self.served_free += 1
        self._round += 1

    def _serve_request(
        self, requester: ScripAgent, resource_type: int
    ) -> RoundOutcome:
        price = self.config.price
        able = [
            agent
            for agent in self.agents
            if agent.agent_id != requester.agent_id
            and agent.can_serve(resource_type)
            and self._ability_rng.random() < self.config.ability
        ]
        free_volunteers = [
            agent for agent in able if not agent.charges() and agent.volunteers(price)
        ]
        paid_volunteers = [
            agent for agent in able if agent.charges() and agent.volunteers(price)
        ]
        n_volunteers = len(free_volunteers) + len(paid_volunteers)
        # Free service first: no rational requester pays when an
        # altruist offers the same service for nothing.
        if free_volunteers:
            server = free_volunteers[
                int(self._choice_rng.integers(len(free_volunteers)))
            ]
            self._complete(requester, server, paid=False)
            return RoundOutcome(
                requester=requester.agent_id,
                server=server.agent_id,
                paid=False,
                volunteers=n_volunteers,
                resource_type=resource_type,
            )
        can_pay = requester.balance >= price and requester.wants_service(price)
        if paid_volunteers and can_pay:
            server = paid_volunteers[
                int(self._choice_rng.integers(len(paid_volunteers)))
            ]
            requester.debit(price)
            server.credit(price)
            self._complete(requester, server, paid=True)
            return RoundOutcome(
                requester=requester.agent_id,
                server=server.agent_id,
                paid=True,
                volunteers=n_volunteers,
                resource_type=resource_type,
            )
        return RoundOutcome(
            requester=requester.agent_id,
            server=None,
            paid=False,
            volunteers=n_volunteers,
            resource_type=resource_type,
        )

    def _complete(self, requester: ScripAgent, server: ScripAgent, paid: bool) -> None:
        requester.utility += self.config.gamma
        server.utility -= self.config.alpha
        requester.services_received += 1
        server.services_provided += 1
