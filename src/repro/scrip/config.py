"""Configuration of the scrip-system economy.

The model follows Kash, Friedman and Halpern's scrip-system papers
(EC'07), which the lotus-eater paper builds on: each round one agent
needs service and offers one scrip for it; each other agent is *able*
to provide with some probability; providing costs ``alpha``, receiving
is worth ``gamma > alpha``; rational agents play *threshold
strategies* — "choose a threshold and provide service only when he has
less than that threshold amount of scrip".

An agent at or above its threshold is exactly a *satiated* node in the
lotus-eater sense: its monetary demands are met, so it provides no
service.  The attacker's lever is therefore money: gifts or overpaid
purchases push targets over their thresholds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core.errors import ConfigurationError

__all__ = ["ScripConfig"]


@dataclass(frozen=True)
class ScripConfig:
    """Parameters of one scrip economy."""

    #: Number of agents.
    n_agents: int = 100
    #: Scrip each agent starts with (the money supply is
    #: ``n_agents * initial_balance`` and never changes except by
    #: attacker injection).
    initial_balance: int = 2
    #: Rational agents volunteer while their balance is strictly below
    #: this threshold.
    threshold: int = 4
    #: Probability an agent is able to serve a given request.
    ability: float = 0.3
    #: Utility of receiving service.
    gamma: float = 1.0
    #: Cost of providing service.
    alpha: float = 0.1
    #: Price of one unit of service, in scrip.
    price: int = 1
    #: Number of distinct resource types requests draw from.  With
    #: more than one type, agents can have limited capability sets and
    #: rare types become attack targets.
    n_resource_types: int = 1
    #: Relative demand for each resource type (normalized internally);
    #: ``None`` means uniform.  Rare resources are typically also
    #: rarely demanded — which is exactly what keeps their few
    #: providers below threshold (willing) at baseline and makes them
    #: clean lotus-eater targets.
    type_weights: "tuple" = None

    @classmethod
    def paper(cls) -> "ScripConfig":
        """A representative healthy economy (default parameters)."""
        return cls()

    @classmethod
    def small(cls) -> "ScripConfig":
        """A reduced economy for fast tests."""
        return cls(n_agents=20, initial_balance=2, threshold=3, ability=0.5)

    def replace(self, **changes) -> "ScripConfig":
        """A copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @property
    def money_supply(self) -> int:
        """Total scrip in circulation at the start."""
        return self.n_agents * self.initial_balance

    def max_satiable_fraction(self) -> float:
        """Upper bound on the fraction of agents satiable at once.

        The Section 4 defense argument: "in a scrip system there is
        generally a fixed amount of money ... there may not even be
        enough money in the system to satiate a significant fraction of
        the nodes."  An agent needs ``threshold`` scrip to be satiated,
        so at most ``money_supply / threshold`` agents can be satiated
        simultaneously without external injection.
        """
        return min(1.0, self.money_supply / (self.threshold * self.n_agents))

    def __post_init__(self) -> None:
        if self.n_agents < 2:
            raise ConfigurationError(f"n_agents must be >= 2, got {self.n_agents}")
        if self.initial_balance < 0:
            raise ConfigurationError(
                f"initial_balance must be >= 0, got {self.initial_balance}"
            )
        if self.threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {self.threshold}")
        if not 0.0 < self.ability <= 1.0:
            raise ConfigurationError(f"ability must be in (0, 1], got {self.ability}")
        if self.gamma <= self.alpha:
            raise ConfigurationError(
                f"service must be worth more than it costs: gamma={self.gamma} "
                f"alpha={self.alpha}"
            )
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {self.alpha}")
        if self.price < 1:
            raise ConfigurationError(f"price must be >= 1, got {self.price}")
        if self.n_resource_types < 1:
            raise ConfigurationError(
                f"n_resource_types must be >= 1, got {self.n_resource_types}"
            )
        if self.type_weights is not None:
            if len(self.type_weights) != self.n_resource_types:
                raise ConfigurationError(
                    f"type_weights must have {self.n_resource_types} entries, "
                    f"got {len(self.type_weights)}"
                )
            if any(weight < 0 for weight in self.type_weights):
                raise ConfigurationError(
                    f"type_weights must be non-negative: {self.type_weights}"
                )
            if sum(self.type_weights) <= 0:
                raise ConfigurationError("type_weights must not all be zero")

    def normalized_type_weights(self) -> "tuple":
        """Demand distribution over resource types (sums to 1)."""
        if self.type_weights is None:
            return tuple(1.0 / self.n_resource_types for _ in range(self.n_resource_types))
        total = sum(self.type_weights)
        return tuple(weight / total for weight in self.type_weights)
